"""Analysis layer: figure builders, worked examples, report rendering."""

from repro.analysis.examples import (
    ExampleBlock,
    block_358624_block,
    figure_1a_block,
    figure_1b_block,
    figure_6_chain,
)
from repro.analysis.figures import (
    DEFAULT_BUCKETS,
    FigureData,
    absolute_lcc_series,
    conflict_series,
    figure10,
    figure4,
    figure5,
    figure7,
    figure8,
    figure9,
    load_series,
)
from repro.analysis.dot import (
    account_tdg_to_dot,
    tdg_groups_to_dot,
    utxo_chain_to_dot,
)
from repro.analysis.report import render_sparkline
from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    difference_ci,
    metric_ci,
    series_with_ci,
    weighted_mean,
)
from repro.analysis.report import (
    format_rate,
    format_speedup,
    render_series,
    render_series_table,
    render_table,
    render_table1,
)

__all__ = [
    "ExampleBlock",
    "block_358624_block",
    "figure_1a_block",
    "figure_1b_block",
    "figure_6_chain",
    "DEFAULT_BUCKETS",
    "FigureData",
    "absolute_lcc_series",
    "conflict_series",
    "figure10",
    "figure4",
    "figure5",
    "figure7",
    "figure8",
    "figure9",
    "load_series",
    "account_tdg_to_dot",
    "tdg_groups_to_dot",
    "utxo_chain_to_dot",
    "render_sparkline",
    "ConfidenceInterval",
    "bootstrap_ci",
    "difference_ci",
    "metric_ci",
    "series_with_ci",
    "weighted_mean",
    "format_rate",
    "format_speedup",
    "render_series",
    "render_series_table",
    "render_table",
    "render_table1",
]
