"""Reconstructions of the paper's worked examples (Figs. 1 and 6).

These are the paper's own ground-truth blocks, rebuilt exactly:

* Ethereum block 1000007 (Fig. 1a): 5 regular transactions + coinbase;
  transactions 3 and 4 share the DwarfPool sender, so the single-tx and
  group conflict rates are both 40%.
* Ethereum block 1000124 (Fig. 1b): 15 regular transactions + coinbase
  + 18 internal transactions; transactions 1-9 deposit to Poloniex,
  10-12 call a contract chain ending at ElcoinDb, 13-14 share a sender.
  Counting the coinbase in the denominator as the paper's §III-A4 text
  does, the single-tx conflict rate is 14/16 = 87.5% and the group rate
  9/16 = 56.25%.
* Bitcoin block 500000 (Fig. 6): an 18-transaction intra-block TXO
  spend chain seeded by a transaction from block 499975.

The examples double as acceptance tests for the TDG code and the
speed-up models' worked numbers (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import BlockMetrics, compute_block_metrics
from repro.core.tdg import TDGResult, account_tdg_from_edges, utxo_tdg
from repro.utxo.transaction import TxOutputSpec, UTXOTransaction, make_transaction
from repro.utxo.txo import COIN


@dataclass(frozen=True)
class ExampleBlock:
    """A reconstructed paper example with its computed metrics."""

    name: str
    tdg: TDGResult
    metrics: BlockMetrics
    total_with_coinbase: int

    @property
    def single_conflict_rate_with_coinbase(self) -> float:
        """Conflict rate with the coinbase counted in the denominator.

        The paper's Fig. 1b prose uses this convention ("14 out of its
        16 transactions are conflicted"), while its formal definition in
        §III-A ignores coinbases entirely; both are exposed.
        """
        if self.total_with_coinbase == 0:
            return 0.0
        return self.metrics.num_conflicted / self.total_with_coinbase

    @property
    def group_conflict_rate_with_coinbase(self) -> float:
        if self.total_with_coinbase == 0:
            return 0.0
        return self.metrics.lcc_size / self.total_with_coinbase


def figure_1a_block() -> ExampleBlock:
    """Ethereum block 1000007: 5 transactions, one conflicting pair."""
    tx_edges = {
        "tx0": [("0xeb3", "0x828")],
        "tx1": [("0x529", "0x08a")],
        "tx2": [("0x125", "0xfbb")],
        "tx3": [("0x2a6", "0x24b")],  # DwarfPool sends twice in this block
        "tx4": [("0x2a6", "0xc70")],
    }
    tdg = account_tdg_from_edges(tx_edges)
    return ExampleBlock(
        name="ethereum-1000007",
        tdg=tdg,
        metrics=compute_block_metrics(tdg),
        total_with_coinbase=6,
    )


def figure_1b_edges() -> dict[str, list[tuple[str, str]]]:
    """The per-transaction edge lists of Ethereum block 1000124.

    Each transaction's first pair is the regular transaction; the rest
    are its internal transactions (18 in total across txs 10-12).
    """
    tx_edges: dict[str, list[tuple[str, str]]] = {}
    # Transactions 1-9: nine distinct senders deposit to Poloniex (0x32b).
    for index in range(1, 10):
        tx_edges[f"tx{index}"] = [(f"0xsender{index}", "0x32b")]
    # Transactions 10-12: calls into 0x9af, which forwards through a
    # chain of unverified contracts down to ElcoinDb (0x276) — six
    # internal transactions each, 18 in total as in the paper.
    hop_chain = ["0x9af", "0xh1", "0xh2", "0xh3", "0xh4", "0xh5", "0x276"]
    for index in range(10, 13):
        edges = [(f"0xcaller{index}", "0x9af")]
        edges.extend(zip(hop_chain, hop_chain[1:]))
        tx_edges[f"tx{index}"] = edges
    # Transactions 13-14: the same DwarfPool address sends twice.
    tx_edges["tx13"] = [("0xdwarf", "0xr13")]
    tx_edges["tx14"] = [("0xdwarf", "0xr14")]
    # Transaction 15: unrelated.
    tx_edges["tx15"] = [("0xlone", "0xr15")]
    return tx_edges


def figure_1b_block() -> ExampleBlock:
    """Ethereum block 1000124: Poloniex fan-in plus a contract chain."""
    tx_edges = figure_1b_edges()
    tdg = account_tdg_from_edges(tx_edges)
    return ExampleBlock(
        name="ethereum-1000124",
        tdg=tdg,
        metrics=compute_block_metrics(tdg),
        total_with_coinbase=16,
    )


def block_358624_block() -> ExampleBlock:
    """The paper's extreme Bitcoin block 358624 (§I).

    "3217 out of the total 3264 transactions are dependent on each
    other (i.e., there is no concurrency between them and they must be
    executed sequentially)."  Reconstructed as one 3217-transaction
    spend chain plus 47 independent transactions; the group conflict
    rate is ~0.986, so Eq. 2 predicts essentially no speed-up at any
    core count — the worst case the paper's measurements found.
    """
    chain_length = 3217
    total = 3264
    seed = make_transaction(
        inputs=(),
        outputs=[TxOutputSpec(value=chain_length * COIN, owner="sweeper")],
        nonce="358624-seed",
    )
    transactions: list[UTXOTransaction] = []
    current = seed.outputs[0]
    for step in range(chain_length):
        tx = make_transaction(
            inputs=[current.outpoint],
            outputs=[TxOutputSpec(value=current.value, owner="sweeper")],
            nonce=("358624", step),
        )
        transactions.append(tx)
        current = tx.outputs[0]
    for index in range(total - chain_length):
        lone_seed = make_transaction(
            inputs=(),
            outputs=[TxOutputSpec(value=COIN, owner=f"payer{index}")],
            nonce=("358624-ext", index),
        )
        transactions.append(
            make_transaction(
                inputs=[lone_seed.outputs[0].outpoint],
                outputs=[TxOutputSpec(value=COIN, owner=f"payee{index}")],
                nonce=("358624-pay", index),
            )
        )
    tdg = utxo_tdg(transactions)
    return ExampleBlock(
        name="bitcoin-358624",
        tdg=tdg,
        metrics=compute_block_metrics(tdg),
        total_with_coinbase=total + 1,
    )


# Output values along the Fig. 6 chain, in BTC (first output of each hop).
_FIG6_VALUES_BTC = [
    1.84053, 1.00000, 0.83640, 0.83223, 0.82804, 0.82153, 0.81145,
    0.80966, 0.77937, 0.77639, 0.74737, 0.74081, 0.73634, 0.73197,
    0.70112, 0.67018, 0.66809, 0.66478,
]


def figure_6_chain() -> tuple[list[UTXOTransaction], TDGResult]:
    """Bitcoin block 500000's 18-transaction intra-block spend chain.

    The seed transaction (hash prefix 1836, mined in block 499975)
    provides the first spent output; the 18 chain transactions all sit
    in block 500000 and must execute sequentially.
    """
    seed = make_transaction(
        inputs=(),
        outputs=[
            TxOutputSpec(value=int(1.84053 * COIN), owner="sweeper"),
            TxOutputSpec(value=int(0.01193 * COIN), owner="splinter0"),
        ],
        nonce="fig6-seed-1836",
    )
    transactions: list[UTXOTransaction] = []
    current = seed.outputs[0]
    for step, value_btc in enumerate(_FIG6_VALUES_BTC):
        main_value = int(value_btc * COIN)
        main_value = min(main_value, current.value)
        splinter = current.value - main_value
        outputs = [TxOutputSpec(value=main_value, owner="sweeper")]
        if splinter > 0:
            outputs.append(
                TxOutputSpec(value=splinter, owner=f"payee{step}")
            )
        tx = make_transaction(
            inputs=[current.outpoint],
            outputs=outputs,
            nonce=("fig6", step),
        )
        transactions.append(tx)
        current = tx.outputs[0]
    tdg = utxo_tdg(transactions)
    return transactions, tdg
