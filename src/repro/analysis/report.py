"""Plain-text rendering of tables and series for the bench harness.

The benches regenerate every paper table and figure as text: tables are
boxed ASCII, series are printed as aligned rows (year, value per line)
so the trends — who is above whom, where the crossovers happen — can be
read directly from bench output and diffed between runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.aggregation import BucketedSeries
from repro.workload.profiles import ChainProfile


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an ASCII table with column auto-sizing."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: list[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append(separator)
    for row in cells:
        lines.append(
            " | ".join(v.ljust(widths[i]) for i, v in enumerate(row))
        )
    return "\n".join(lines)


def render_table1(profiles: Sequence[ChainProfile]) -> str:
    """Reproduce the paper's Table I from the profile catalogue."""
    rows = [
        (
            profile.display_name,
            profile.data_model.upper() if profile.data_model == "utxo"
            else "Account",
            profile.consensus,
            "Yes" if profile.smart_contracts else "No",
            profile.data_source,
        )
        for profile in profiles
    ]
    return render_table(
        ["Blockchain", "Data model", "Consensus", "Smart contracts",
         "Data source"],
        rows,
        title="Table I: Comparison of seven public blockchains",
    )


def render_series(
    series: BucketedSeries,
    *,
    label: str = "",
    position_format: str = "{:8.2f}",
    value_format: str = "{:10.4f}",
) -> str:
    """Render one bucketed series as aligned (position, value) rows."""
    lines: list[str] = []
    if label:
        lines.append(label)
    for position, value in zip(series.positions, series.values):
        lines.append(
            f"  {position_format.format(position)}  "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)


def render_series_table(
    series_by_label: dict[str, BucketedSeries],
    *,
    title: str = "",
    position_label: str = "year",
    value_format: str = "{:10.4f}",
) -> str:
    """Render several series side by side, aligned on bucket index.

    Series produced from the same history share bucket positions; when
    they differ (e.g. two chains with different calendar spans) each
    row shows the first series' position and per-series values by
    bucket index, with blanks where a series is shorter.
    """
    if not series_by_label:
        raise ValueError("no series given")
    labels = list(series_by_label)
    length = max(len(series) for series in series_by_label.values())
    headers = [position_label, *labels]
    rows: list[list[object]] = []
    reference = series_by_label[labels[0]]
    for index in range(length):
        if index < len(reference.positions):
            position = f"{reference.positions[index]:.2f}"
        else:
            position = ""
        row: list[object] = [position]
        for label in labels:
            series = series_by_label[label]
            if index < len(series.values):
                row.append(value_format.format(series.values[index]))
            else:
                row.append("")
        rows.append(row)
    return render_table(headers, rows, title=title)


_SPARK_LEVELS = " .:-=+*#%@"


def render_sparkline(
    series: BucketedSeries,
    *,
    label: str = "",
    width: int | None = None,
    low: float | None = None,
    high: float | None = None,
) -> str:
    """Render a series as a one-line character sparkline.

    Values are mapped onto ten density levels between *low* and *high*
    (defaulting to the series' own range).  Useful for compact CLI
    output where a full table is overkill.
    """
    values = list(series.values)
    if width is not None:
        if width < 1:
            raise ValueError("width must be positive")
        if len(values) > width:
            # Downsample by averaging consecutive chunks.
            chunk = len(values) / width
            values = [
                sum(values[int(i * chunk):int((i + 1) * chunk)] or [0.0])
                / max(1, len(values[int(i * chunk):int((i + 1) * chunk)]))
                for i in range(width)
            ]
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    span = hi - lo
    chars = []
    for value in values:
        if span <= 0:
            level = 0
        else:
            normalised = (value - lo) / span
            level = int(round(normalised * (len(_SPARK_LEVELS) - 1)))
            level = min(len(_SPARK_LEVELS) - 1, max(0, level))
        chars.append(_SPARK_LEVELS[level])
    line = "".join(chars)
    prefix = f"{label} " if label else ""
    return f"{prefix}[{line}] {lo:.3g}..{hi:.3g}"


def format_rate(value: float) -> str:
    """Format a conflict rate as a percentage string."""
    return f"{100.0 * value:.1f}%"


def format_speedup(value: float) -> str:
    return f"{value:.2f}x"
