"""Plain-text rendering of tables and series for the bench harness.

The benches regenerate every paper table and figure as text: tables are
boxed ASCII, series are printed as aligned rows (year, value per line)
so the trends — who is above whom, where the crossovers happen — can be
read directly from bench output and diffed between runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.aggregation import BucketedSeries
from repro.workload.profiles import ChainProfile


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an ASCII table with column auto-sizing."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: list[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append(separator)
    for row in cells:
        lines.append(
            " | ".join(v.ljust(widths[i]) for i, v in enumerate(row))
        )
    return "\n".join(lines)


def render_table1(profiles: Sequence[ChainProfile]) -> str:
    """Reproduce the paper's Table I from the profile catalogue."""
    rows = [
        (
            profile.display_name,
            profile.data_model.upper() if profile.data_model == "utxo"
            else "Account",
            profile.consensus,
            "Yes" if profile.smart_contracts else "No",
            profile.data_source,
        )
        for profile in profiles
    ]
    return render_table(
        ["Blockchain", "Data model", "Consensus", "Smart contracts",
         "Data source"],
        rows,
        title="Table I: Comparison of seven public blockchains",
    )


def render_series(
    series: BucketedSeries,
    *,
    label: str = "",
    position_format: str = "{:8.2f}",
    value_format: str = "{:10.4f}",
) -> str:
    """Render one bucketed series as aligned (position, value) rows."""
    lines: list[str] = []
    if label:
        lines.append(label)
    for position, value in zip(series.positions, series.values):
        lines.append(
            f"  {position_format.format(position)}  "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)


def render_series_table(
    series_by_label: dict[str, BucketedSeries],
    *,
    title: str = "",
    position_label: str = "year",
    value_format: str = "{:10.4f}",
) -> str:
    """Render several series side by side, aligned on bucket index.

    Series produced from the same history share bucket positions; when
    they differ (e.g. two chains with different calendar spans) each
    row shows the first series' position and per-series values by
    bucket index, with blanks where a series is shorter.
    """
    if not series_by_label:
        raise ValueError("no series given")
    labels = list(series_by_label)
    length = max(len(series) for series in series_by_label.values())
    headers = [position_label, *labels]
    rows: list[list[object]] = []
    reference = series_by_label[labels[0]]
    for index in range(length):
        if index < len(reference.positions):
            position = f"{reference.positions[index]:.2f}"
        else:
            position = ""
        row: list[object] = [position]
        for label in labels:
            series = series_by_label[label]
            if index < len(series.values):
                row.append(value_format.format(series.values[index]))
            else:
                row.append("")
        rows.append(row)
    return render_table(headers, rows, title=title)


_SPARK_LEVELS = " .:-=+*#%@"


def render_sparkline(
    series: BucketedSeries,
    *,
    label: str = "",
    width: int | None = None,
    low: float | None = None,
    high: float | None = None,
) -> str:
    """Render a series as a one-line character sparkline.

    Values are mapped onto ten density levels between *low* and *high*
    (defaulting to the series' own range).  Useful for compact CLI
    output where a full table is overkill.
    """
    values = list(series.values)
    if width is not None:
        if width < 1:
            raise ValueError("width must be positive")
        if len(values) > width:
            # Downsample by averaging consecutive chunks.
            chunk = len(values) / width
            values = [
                sum(values[int(i * chunk):int((i + 1) * chunk)] or [0.0])
                / max(1, len(values[int(i * chunk):int((i + 1) * chunk)]))
                for i in range(width)
            ]
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    span = hi - lo
    chars = []
    for value in values:
        if span <= 0:
            level = 0
        else:
            normalised = (value - lo) / span
            level = int(round(normalised * (len(_SPARK_LEVELS) - 1)))
            level = min(len(_SPARK_LEVELS) - 1, max(0, level))
        chars.append(_SPARK_LEVELS[level])
    line = "".join(chars)
    prefix = f"{label} " if label else ""
    return f"{prefix}[{line}] {lo:.3g}..{hi:.3g}"


# Slice fill characters cycle per task so adjacent tasks on a lane are
# visually separable without colour.
_GANTT_FILLS = "#=%@*+"


def render_gantt(
    events: Sequence[object],
    *,
    width: int = 64,
    title: str = "",
) -> str:
    """Render flight-recorder events as a per-lane ASCII Gantt chart.

    One row per (executor, lane): the lane's task executions painted
    onto a fixed-width time axis spanning the overall makespan, with
    the lane's busy fraction at the end of the row.  Queue-side events
    (negative lanes) are skipped — this chart shows where lanes spend
    their time, which is the per-lane view the critical-path profiler
    summarises numerically.

    *events* duck-types :class:`repro.obs.timeline.TimelineEvent`
    (``kind``/``executor``/``lane``/``clock``/``cost`` attributes); this
    module stays import-free of :mod:`repro.obs` because the obs
    exporters import these renderers.
    """
    if width < 8:
        raise ValueError("width must be at least 8")
    starts = [
        event for event in events
        if event.kind == "start" and event.lane >= 0  # type: ignore[attr-defined]
    ]
    # Executors replay every block from logical clock 0; lay blocks out
    # side by side (same global-offset rule as the Chrome exporter) so
    # a multi-block recording reads as one continuous timeline.
    extents: dict[object, float] = {}
    block_order: list[object] = []
    for event in starts:
        block = event.block  # type: ignore[attr-defined]
        if block not in extents:
            block_order.append(block)
            extents[block] = 0.0
        end = float(event.clock) + float(event.cost)  # type: ignore[attr-defined]
        extents[block] = max(extents[block], end)
    offsets: dict[object, float] = {}
    cursor = 0.0
    for block in block_order:
        offsets[block] = cursor
        cursor += extents[block]
    slices: dict[tuple[str, int], list[tuple[float, float]]] = {}
    makespan = 0.0
    for event in starts:
        offset = offsets[event.block]  # type: ignore[attr-defined]
        start = offset + float(event.clock)  # type: ignore[attr-defined]
        end = start + float(event.cost)  # type: ignore[attr-defined]
        key = (str(event.executor), int(event.lane))  # type: ignore[attr-defined]
        slices.setdefault(key, []).append((start, end))
        makespan = max(makespan, end)
    if not slices or makespan <= 0:
        return f"{title}\n(no lane executions recorded)" if title \
            else "(no lane executions recorded)"
    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(
        len(f"{executor}/lane {lane}") for executor, lane in slices
    )
    scale = width / makespan
    for executor, lane in sorted(slices):
        row = [" "] * width
        busy = 0.0
        for index, (start, end) in enumerate(
            sorted(slices[(executor, lane)])
        ):
            busy += end - start
            fill = _GANTT_FILLS[index % len(_GANTT_FILLS)]
            first = min(width - 1, int(start * scale))
            last = min(width - 1, max(first, int(end * scale) - 1))
            for position in range(first, last + 1):
                row[position] = fill
        label = f"{executor}/lane {lane}".ljust(label_width)
        utilization = 100.0 * busy / makespan
        lines.append(f"{label} |{''.join(row)}| {utilization:5.1f}%")
    end_label = f"{makespan:g}"
    lines.append(
        " " * (label_width + 1) + "0"
        + " " * max(1, width - len(end_label)) + end_label
    )
    return "\n".join(lines)


_SHARE_BAR_WIDTH = 32


def render_stage_shares(
    shares: Sequence[tuple[str, float]],
    *,
    title: str = "",
) -> str:
    """Render (stage, fraction) pairs as labelled percentage bars.

    Used by the lifecycle report and ``analysis.report`` consumers to
    show where end-to-end transaction latency goes; fractions are
    expected to sum to ~1 but are rendered as given.
    """
    if not shares:
        return "(no stage shares)"
    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(len(stage) for stage, _ in shares)
    for stage, fraction in shares:
        filled = int(round(fraction * _SHARE_BAR_WIDTH))
        filled = min(_SHARE_BAR_WIDTH, max(0, filled))
        bar = "#" * filled + " " * (_SHARE_BAR_WIDTH - filled)
        lines.append(
            f"{stage.ljust(label_width)} |{bar}| {100.0 * fraction:5.1f}%"
        )
    return "\n".join(lines)


def format_rate(value: float) -> str:
    """Format a conflict rate as a percentage string."""
    return f"{100.0 * value:.1f}%"


def format_speedup(value: float) -> str:
    return f"{value:.2f}x"
