"""Graphviz DOT export for transaction dependency graphs.

The paper's Fig. 1 draws TDGs with solid regular-transaction edges,
dotted coinbase edges and dashed internal-transaction edges.  This
module renders the same pictures from our data structures so examples
and documentation can regenerate them (`dot -Tpdf` turns the output
into the figure).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.chain.hashing import short_hash
from repro.core.tdg import TDGResult
from repro.utxo.transaction import UTXOTransaction


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def account_tdg_to_dot(
    tx_edges: Mapping[str, Sequence[tuple[str, str]]],
    *,
    title: str = "TDG",
) -> str:
    """Render an account-model TDG in the paper's Fig. 1 style.

    Nodes are addresses; each transaction's first pair draws a solid
    edge labelled with the transaction id, subsequent pairs (internal
    transactions) draw dashed edges.
    """
    lines = [f"digraph {_quote(title)} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [shape=ellipse, fontsize=10];")
    addresses: set[str] = set()
    for pairs in tx_edges.values():
        for sender, receiver in pairs:
            addresses.add(sender)
            addresses.add(receiver)
    for address in sorted(addresses):
        label = address if len(address) <= 6 else address[:5]
        lines.append(f"  {_quote(address)} [label={_quote(label)}];")
    for tx_id in sorted(tx_edges):
        pairs = tx_edges[tx_id]
        for index, (sender, receiver) in enumerate(pairs):
            style = "solid" if index == 0 else "dashed"
            label = f' label={_quote(tx_id)}' if index == 0 else ""
            lines.append(
                f"  {_quote(sender)} -> {_quote(receiver)} "
                f"[style={style}{label}];"
            )
    lines.append("}")
    return "\n".join(lines)


def utxo_chain_to_dot(
    transactions: Sequence[UTXOTransaction],
    *,
    title: str = "spend-chain",
) -> str:
    """Render a UTXO block in the paper's Fig. 6 style.

    Transactions are boxes labelled by their short hash; output TXOs
    are circles labelled with the value in coins; dotted lines connect
    transactions to their outputs, solid lines connect spent TXOs to
    their spending transactions.
    """
    in_block = {tx.tx_hash for tx in transactions}
    outpoint_creator: dict[str, str] = {}
    lines = [f"digraph {_quote(title)} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [fontsize=9];")
    for tx in transactions:
        node_id = f"tx_{tx.tx_hash}"
        lines.append(
            f"  {_quote(node_id)} "
            f"[shape=box, label={_quote(short_hash(tx.tx_hash))}];"
        )
        for txo in tx.outputs:
            txo_id = f"txo_{txo.outpoint}"
            outpoint_creator[str(txo.outpoint)] = node_id
            lines.append(
                f"  {_quote(txo_id)} [shape=circle, "
                f"label={_quote(f'{txo.value_in_coins():.5f}')}];"
            )
            lines.append(
                f"  {_quote(node_id)} -> {_quote(txo_id)} [style=dotted];"
            )
    for tx in transactions:
        node_id = f"tx_{tx.tx_hash}"
        for outpoint in tx.inputs:
            if outpoint.tx_hash in in_block:
                txo_id = f"txo_{outpoint}"
                lines.append(
                    f"  {_quote(txo_id)} -> {_quote(node_id)} "
                    "[style=solid];"
                )
    lines.append("}")
    return "\n".join(lines)


def tdg_groups_to_dot(tdg: TDGResult, *, title: str = "groups") -> str:
    """Render a TDG's dependency groups as clustered subgraphs."""
    lines = [f"digraph {_quote(title)} {{"]
    lines.append("  node [shape=box, fontsize=9];")
    for index, group in enumerate(tdg.groups):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(f'group {index} ({len(group)})')};")
        for tx_hash in group:
            lines.append(
                f"    {_quote(tx_hash)} "
                f"[label={_quote(short_hash(tx_hash, 8))}];"
            )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
