"""Statistical rigour for the measured series: bootstrap intervals.

The paper reports bucketed weighted means without uncertainty; for a
synthetic reproduction, confidence intervals matter twice over — they
say whether a paper-vs-measured gap is meaningful, and whether two
chains' rates genuinely differ.  This module adds:

* :func:`weighted_mean` — the paper's weighting rule in one place;
* :func:`bootstrap_ci` — percentile bootstrap for a weighted mean over
  per-block observations;
* :func:`series_with_ci` — per-bucket intervals for a metric history;
* :func:`difference_ci` — bootstrap CI for the difference of two
  chains' weighted means (e.g. is Bitcoin Cash's conflict rate really
  above Bitcoin's?).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.pipeline import BlockRecord, ChainHistory


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ValueError("interval bounds out of order")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def weighted_mean(
    values: Sequence[float], weights: Sequence[float]
) -> float:
    """The paper's weighted average; 0.0 when all weights vanish."""
    if len(values) != len(weights):
        raise ValueError("values and weights must be parallel")
    total = sum(weights)
    if total == 0:
        return 0.0
    return sum(v * w for v, w in zip(values, weights)) / total


def bootstrap_ci(
    values: Sequence[float],
    weights: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 1000,
    rng: random.Random | None = None,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for a weighted mean.

    Blocks are resampled with replacement, pairing each value with its
    weight (the block-level bootstrap appropriate for per-block
    metrics).
    """
    if not values:
        raise ValueError("need at least one observation")
    if resamples < 10:
        raise ValueError("resamples must be at least 10")
    rng = rng or random.Random(0)
    point = weighted_mean(values, weights)
    n = len(values)
    estimates = []
    for _ in range(resamples):
        indices = [rng.randrange(n) for _ in range(n)]
        estimates.append(
            weighted_mean(
                [values[i] for i in indices],
                [weights[i] for i in indices],
            )
        )
    estimates.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * resamples))
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return ConfidenceInterval(
        point=point,
        low=min(estimates[low_index], point),
        high=max(estimates[high_index], point),
        confidence=confidence,
    )


def metric_ci(
    history: ChainHistory,
    metric: Callable[[BlockRecord], float],
    *,
    weight: Callable[[BlockRecord], float] = lambda r: r.weight_tx,
    confidence: float = 0.95,
    resamples: int = 1000,
    rng: random.Random | None = None,
) -> ConfidenceInterval:
    """Bootstrap CI for a per-block metric over a whole history."""
    records = history.non_empty_records()
    if not records:
        raise ValueError("history has no non-empty blocks")
    return bootstrap_ci(
        [metric(r) for r in records],
        [weight(r) for r in records],
        confidence=confidence,
        resamples=resamples,
        rng=rng,
    )


def series_with_ci(
    history: ChainHistory,
    metric: Callable[[BlockRecord], float],
    *,
    num_buckets: int,
    weight: Callable[[BlockRecord], float] = lambda r: r.weight_tx,
    confidence: float = 0.95,
    resamples: int = 400,
    rng: random.Random | None = None,
) -> list[tuple[float, ConfidenceInterval]]:
    """(year, CI) per bucket — the figure series with uncertainty."""
    records = history.non_empty_records()
    if not records:
        raise ValueError("history has no non-empty blocks")
    num_buckets = min(num_buckets, len(records))
    rng = rng or random.Random(0)
    out: list[tuple[float, ConfidenceInterval]] = []
    total = len(records)
    for bucket in range(num_buckets):
        start = bucket * total // num_buckets
        stop = (bucket + 1) * total // num_buckets
        members = records[start:stop]
        if not members:
            continue
        year = sum(history.year_of(r) for r in members) / len(members)
        ci = bootstrap_ci(
            [metric(r) for r in members],
            [weight(r) for r in members],
            confidence=confidence,
            resamples=resamples,
            rng=rng,
        )
        out.append((year, ci))
    return out


def difference_ci(
    left: ChainHistory,
    right: ChainHistory,
    metric: Callable[[BlockRecord], float],
    *,
    confidence: float = 0.95,
    resamples: int = 1000,
    rng: random.Random | None = None,
) -> ConfidenceInterval:
    """Bootstrap CI for (left - right) weighted-mean difference.

    A CI excluding zero certifies an ordering claim like "Bitcoin
    Cash's conflict rate is higher than Bitcoin's" (§IV-C).
    """
    rng = rng or random.Random(0)
    left_records = left.non_empty_records()
    right_records = right.non_empty_records()
    if not left_records or not right_records:
        raise ValueError("both histories need non-empty blocks")

    def resample(records) -> float:
        n = len(records)
        indices = [rng.randrange(n) for _ in range(n)]
        return weighted_mean(
            [metric(records[i]) for i in indices],
            [records[i].weight_tx for i in indices],
        )

    point = weighted_mean(
        [metric(r) for r in left_records],
        [r.weight_tx for r in left_records],
    ) - weighted_mean(
        [metric(r) for r in right_records],
        [r.weight_tx for r in right_records],
    )
    estimates = sorted(
        resample(left_records) - resample(right_records)
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * resamples))
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return ConfidenceInterval(
        point=point,
        low=min(estimates[low_index], point),
        high=max(estimates[high_index], point),
        confidence=confidence,
    )
