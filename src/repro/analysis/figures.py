"""Per-figure series builders — one function per paper figure.

Each builder turns :class:`repro.core.pipeline.ChainHistory` objects
into the bucketed, weighted series the corresponding paper figure
plots.  The benches print these series; the returned structures are
plain dataclasses so tests can assert on the numbers directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregation import BucketedSeries, bucketize
from repro.core.pipeline import BlockRecord, ChainHistory
from repro.core.speedup import group_speedup_bound, speculative_speedup

DEFAULT_BUCKETS = 24


@dataclass(frozen=True)
class FigureData:
    """A named collection of series, one per plotted line."""

    figure: str
    title: str
    series: dict[str, BucketedSeries] = field(default_factory=dict)

    def labels(self) -> list[str]:
        return list(self.series)


def _records(history: ChainHistory) -> list[BlockRecord]:
    records = history.non_empty_records()
    if not records:
        raise ValueError(f"history {history.name!r} has no non-empty blocks")
    return records


def _series(
    history: ChainHistory,
    *,
    value,
    weight,
    num_buckets: int,
) -> BucketedSeries:
    records = _records(history)
    return bucketize(
        records,
        num_buckets=num_buckets,
        value=value,
        weight=weight,
        position=history.year_of,
    )


def load_series(
    history: ChainHistory, *, num_buckets: int = DEFAULT_BUCKETS
) -> FigureData:
    """Transactions per block (regular and total) — Figs. 4a/5a/8a/9a."""
    series = {
        "regular_txs": _series(
            history,
            value=lambda r: r.num_transactions,
            weight=lambda r: 1.0,
            num_buckets=num_buckets,
        )
    }
    if history.data_model == "account":
        series["all_txs"] = _series(
            history,
            value=lambda r: r.total_transactions,
            weight=lambda r: 1.0,
            num_buckets=num_buckets,
        )
    else:
        series["input_txos"] = _series(
            history,
            value=lambda r: r.num_input_txos,
            weight=lambda r: 1.0,
            num_buckets=num_buckets,
        )
    return FigureData(
        figure="load",
        title=f"{history.name}: transactions per block",
        series=series,
    )


def conflict_series(
    history: ChainHistory,
    *,
    metric: str,
    num_buckets: int = DEFAULT_BUCKETS,
) -> FigureData:
    """Weighted conflict-rate series — Figs. 4b/4c/5b/5c/7/8/9.

    Args:
        metric: "single" or "group".

    For account chains both the tx-count-weighted and gas-weighted
    variants are produced (the thick/thin line pairs of Fig. 4); UTXO
    chains get tx-count and size-weighted variants.
    """
    if metric == "single":
        plain = lambda r: r.metrics.single_conflict_rate  # noqa: E731
        weighted = lambda r: r.metrics.weighted_single_conflict_rate  # noqa: E731
    elif metric == "group":
        plain = lambda r: r.metrics.group_conflict_rate  # noqa: E731
        weighted = lambda r: r.metrics.weighted_group_conflict_rate  # noqa: E731
    else:
        raise ValueError(f"unknown metric {metric!r}")

    series = {
        "tx_weighted": _series(
            history,
            value=plain,
            weight=lambda r: r.weight_tx,
            num_buckets=num_buckets,
        )
    }
    if history.data_model == "account":
        series["gas_weighted"] = _series(
            history,
            value=weighted,
            weight=lambda r: r.weight_gas,
            num_buckets=num_buckets,
        )
    else:
        series["size_weighted"] = _series(
            history,
            value=plain,
            weight=lambda r: r.weight_size,
            num_buckets=num_buckets,
        )
    return FigureData(
        figure=f"conflict-{metric}",
        title=f"{history.name}: {metric} conflict rate (weighted)",
        series=series,
    )


def absolute_lcc_series(
    history: ChainHistory, *, num_buckets: int = DEFAULT_BUCKETS
) -> FigureData:
    """Absolute LCC size per block — Fig. 9c's panel."""
    return FigureData(
        figure="lcc-absolute",
        title=f"{history.name}: absolute LCC size per block",
        series={
            "lcc_size": _series(
                history,
                value=lambda r: r.metrics.lcc_size,
                weight=lambda r: r.weight_tx,
                num_buckets=num_buckets,
            )
        },
    )


def figure4(history: ChainHistory, *, num_buckets: int = DEFAULT_BUCKETS):
    """Fig. 4: Ethereum load + single + group conflict panels."""
    return (
        load_series(history, num_buckets=num_buckets),
        conflict_series(history, metric="single", num_buckets=num_buckets),
        conflict_series(history, metric="group", num_buckets=num_buckets),
    )


def figure5(history: ChainHistory, *, num_buckets: int = DEFAULT_BUCKETS):
    """Fig. 5: Bitcoin load + single + group conflict panels."""
    return figure4(history, num_buckets=num_buckets)


def figure7(
    histories: dict[str, ChainHistory],
    *,
    num_buckets: int = DEFAULT_BUCKETS,
) -> dict[str, FigureData]:
    """Fig. 7: single and group conflict rates for all seven chains.

    Returns a mapping with keys "single" and "group"; each FigureData
    holds one tx-weighted series per chain.
    """
    panels: dict[str, FigureData] = {}
    for metric in ("single", "group"):
        series: dict[str, BucketedSeries] = {}
        for name, history in histories.items():
            data = conflict_series(
                history, metric=metric, num_buckets=num_buckets
            )
            series[name] = data.series["tx_weighted"]
        panels[metric] = FigureData(
            figure=f"fig7-{metric}",
            title=f"all chains: {metric} conflict rate",
            series=series,
        )
    return panels


def figure8(
    ethereum: ChainHistory,
    classic: ChainHistory,
    *,
    num_buckets: int = DEFAULT_BUCKETS,
) -> dict[str, FigureData]:
    """Fig. 8: Ethereum vs. Ethereum Classic, three panels."""
    return _pairwise_panels(ethereum, classic, num_buckets=num_buckets)


def figure9(
    bitcoin: ChainHistory,
    bitcoin_cash: ChainHistory,
    *,
    num_buckets: int = DEFAULT_BUCKETS,
) -> dict[str, FigureData]:
    """Fig. 9: Bitcoin vs. Bitcoin Cash, incl. the absolute-LCC panel."""
    panels = _pairwise_panels(bitcoin, bitcoin_cash, num_buckets=num_buckets)
    panels["lcc_absolute"] = FigureData(
        figure="fig9c",
        title="absolute LCC size per block",
        series={
            bitcoin.name: absolute_lcc_series(
                bitcoin, num_buckets=num_buckets
            ).series["lcc_size"],
            bitcoin_cash.name: absolute_lcc_series(
                bitcoin_cash, num_buckets=num_buckets
            ).series["lcc_size"],
        },
    )
    return panels


def _pairwise_panels(
    left: ChainHistory,
    right: ChainHistory,
    *,
    num_buckets: int,
) -> dict[str, FigureData]:
    panels: dict[str, FigureData] = {}
    panels["load"] = FigureData(
        figure="load",
        title="transactions per block",
        series={
            left.name: load_series(left, num_buckets=num_buckets).series[
                "regular_txs"
            ],
            right.name: load_series(right, num_buckets=num_buckets).series[
                "regular_txs"
            ],
        },
    )
    for metric in ("single", "group"):
        panels[metric] = FigureData(
            figure=f"conflict-{metric}",
            title=f"{metric} conflict rate",
            series={
                left.name: conflict_series(
                    left, metric=metric, num_buckets=num_buckets
                ).series["tx_weighted"],
                right.name: conflict_series(
                    right, metric=metric, num_buckets=num_buckets
                ).series["tx_weighted"],
            },
        )
    return panels


def figure10(
    history: ChainHistory,
    *,
    cores: tuple[int, ...] = (4, 8, 64),
    num_buckets: int = DEFAULT_BUCKETS,
) -> dict[str, FigureData]:
    """Fig. 10: potential speed-ups from both concurrency models.

    Combines Eq. 1 with the single-conflict series (panel a) and Eq. 2
    with the group-conflict series (panel b), per bucket: each bucket
    contributes its weighted mean conflict rate and mean block size x.
    """
    records = _records(history)
    single = bucketize(
        records,
        num_buckets=num_buckets,
        value=lambda r: r.metrics.single_conflict_rate,
        weight=lambda r: r.weight_tx,
        position=history.year_of,
    )
    group = bucketize(
        records,
        num_buckets=num_buckets,
        value=lambda r: r.metrics.group_conflict_rate,
        weight=lambda r: r.weight_tx,
        position=history.year_of,
    )
    sizes = bucketize(
        records,
        num_buckets=num_buckets,
        value=lambda r: r.num_transactions,
        weight=lambda r: 1.0,
        position=history.year_of,
    )
    panels: dict[str, FigureData] = {}
    speculative: dict[str, BucketedSeries] = {}
    grouped: dict[str, BucketedSeries] = {}
    for n in cores:
        spec_values = tuple(
            speculative_speedup(max(1, int(round(x))), n, min(1.0, c))
            for x, c in zip(sizes.values, single.values)
        )
        group_values = tuple(
            group_speedup_bound(n, min(1.0, l)) for l in group.values
        )
        speculative[f"{n}_cores"] = BucketedSeries(
            positions=single.positions,
            values=spec_values,
            weights=single.weights,
            counts=single.counts,
        )
        grouped[f"{n}_cores"] = BucketedSeries(
            positions=group.positions,
            values=group_values,
            weights=group.weights,
            counts=group.counts,
        )
    panels["speculative"] = FigureData(
        figure="fig10a",
        title=f"{history.name}: single-transaction concurrency speed-ups",
        series=speculative,
    )
    panels["grouped"] = FigureData(
        figure="fig10b",
        title=f"{history.name}: group concurrency speed-ups",
        series=grouped,
    )
    return panels
