"""Blocks and block headers.

A :class:`Block` is a header plus an ordered list of transactions.  The
header commits to the transaction list through a Merkle root and to the
chain position through the parent hash, which is what the ledger layer
validates when appending.

Blocks are generic over the transaction type so the same structure hosts
UTXO transactions, account transactions, and stubs in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterator, Sequence, TypeVar

from repro.chain.hashing import hash_fields
from repro.chain.merkle import merkle_root
from repro.chain.transaction import BaseTransaction

TxT = TypeVar("TxT", bound=BaseTransaction)

GENESIS_PARENT = "0" * 64


@dataclass(frozen=True)
class BlockHeader:
    """Immutable block header.

    Attributes:
        height: position in the chain, genesis is 0.
        parent_hash: hash of the previous block header (GENESIS_PARENT for
            the genesis block).
        merkle_root: commitment to the ordered transaction list.
        timestamp: UNIX seconds; strictly increasing along a chain.
        difficulty: PoW difficulty target the block was mined at.
        nonce: PoW solution counter (simulated).
        miner: address or identifier of the block producer.
        extra: free-form annotation (e.g. shard id for sharded chains).
    """

    height: int
    parent_hash: str
    merkle_root: str
    timestamp: float
    difficulty: float = 1.0
    nonce: int = 0
    miner: str = ""
    extra: str = ""

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("height must be non-negative")
        if self.difficulty <= 0:
            raise ValueError("difficulty must be positive")

    @property
    def block_hash(self) -> str:
        """Hash of all header fields; identifies the block."""
        return hash_fields(
            self.height,
            self.parent_hash,
            self.merkle_root,
            self.timestamp,
            self.difficulty,
            self.nonce,
            self.miner,
            self.extra,
        )


@dataclass(frozen=True)
class Block(Generic[TxT]):
    """A block: header plus ordered transactions.

    The transaction order is semantically meaningful: sequential execution
    (the baseline the paper speeds up) processes transactions in exactly
    this order.
    """

    header: BlockHeader
    transactions: tuple[TxT, ...] = field(default_factory=tuple)

    @property
    def block_hash(self) -> str:
        return self.header.block_hash

    @property
    def height(self) -> int:
        return self.header.height

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[TxT]:
        return iter(self.transactions)

    def non_coinbase(self) -> tuple[TxT, ...]:
        """Transactions excluding coinbases.

        The paper's TDG construction ignores coinbase transactions
        (§III-A1), so metric code operates on this view.
        """
        return tuple(tx for tx in self.transactions if not tx.is_coinbase)

    def verify_merkle(self) -> bool:
        """Check that the header's Merkle root matches the transactions."""
        if not self.transactions:
            return False
        return self.header.merkle_root == merkle_root(
            [tx.tx_hash for tx in self.transactions]
        )


def build_block(
    transactions: Sequence[TxT],
    *,
    height: int,
    parent_hash: str,
    timestamp: float,
    difficulty: float = 1.0,
    nonce: int = 0,
    miner: str = "",
    extra: str = "",
) -> Block[TxT]:
    """Assemble a block, computing the Merkle commitment.

    Raises:
        ValueError: if *transactions* is empty — every block in the
            substrates carries at least a coinbase transaction.
    """
    if not transactions:
        raise ValueError("a block must contain at least one transaction")
    header = BlockHeader(
        height=height,
        parent_hash=parent_hash,
        merkle_root=merkle_root([tx.tx_hash for tx in transactions]),
        timestamp=timestamp,
        difficulty=difficulty,
        nonce=nonce,
        miner=miner,
        extra=extra,
    )
    return Block(header=header, transactions=tuple(transactions))
