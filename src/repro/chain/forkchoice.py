"""Fork choice and chain reorganisation.

The plain :class:`repro.chain.ledger.Ledger` is append-only — fine for
analysis, but a real node tracks a block *tree* and follows the
heaviest chain, reorganising its state when a heavier fork overtakes
the current head.  This module supplies that machinery:

* :class:`BlockTree` — stores all received blocks, tracks cumulative
  work, and answers heaviest-tip queries (ties broken first-seen, as in
  Bitcoin);
* :class:`ForkChoice` — maintains the active chain against the tree and
  reports reorganisations as (rolled_back, applied) block lists, which
  a state machine can execute using the UTXO set's undo support.

Cumulative *work* is the sum of block difficulties, the PoW rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.chain.block import GENESIS_PARENT, Block
from repro.chain.errors import LinkError, ValidationError
from repro.chain.transaction import BaseTransaction

TxT = TypeVar("TxT", bound=BaseTransaction)


@dataclass(frozen=True)
class Reorg(Generic[TxT]):
    """A head change: blocks to roll back, blocks to apply, new head."""

    rolled_back: tuple[Block[TxT], ...]
    applied: tuple[Block[TxT], ...]
    new_head: str

    @property
    def depth(self) -> int:
        """Number of blocks undone (0 for a plain extension)."""
        return len(self.rolled_back)

    @property
    def is_extension(self) -> bool:
        return not self.rolled_back


class BlockTree(Generic[TxT]):
    """All known blocks, indexed by hash, with cumulative work."""

    def __init__(self) -> None:
        self._blocks: dict[str, Block[TxT]] = {}
        self._work: dict[str, float] = {}
        self._arrival: dict[str, int] = {}
        self._counter = 0

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def add(self, block: Block[TxT]) -> None:
        """Insert *block*; its parent must already be known (or genesis).

        Raises:
            LinkError: unknown parent or height mismatch.
            ValidationError: bad Merkle commitment or duplicate.
        """
        block_hash = block.block_hash
        if block_hash in self._blocks:
            raise ValidationError(f"duplicate block {block_hash[:12]}")
        if not block.verify_merkle():
            raise ValidationError("Merkle root does not match transactions")
        parent_hash = block.header.parent_hash
        if parent_hash == GENESIS_PARENT:
            if block.height != 0:
                raise LinkError("genesis block must have height 0")
            parent_work = 0.0
        else:
            parent = self._blocks.get(parent_hash)
            if parent is None:
                raise LinkError(f"unknown parent {parent_hash[:12]}")
            if block.height != parent.height + 1:
                raise LinkError(
                    f"height {block.height} does not follow parent "
                    f"height {parent.height}"
                )
            if block.header.timestamp < parent.header.timestamp:
                raise ValidationError("timestamp precedes parent")
            parent_work = self._work[parent_hash]
        self._blocks[block_hash] = block
        self._work[block_hash] = parent_work + block.header.difficulty
        self._arrival[block_hash] = self._counter
        self._counter += 1

    def block(self, block_hash: str) -> Block[TxT]:
        try:
            return self._blocks[block_hash]
        except KeyError:
            raise KeyError(f"unknown block {block_hash!r}") from None

    def work(self, block_hash: str) -> float:
        return self._work[block_hash]

    def heaviest_tip(self) -> str | None:
        """Hash of the most-work block; first-seen wins ties."""
        if not self._blocks:
            return None
        return min(
            self._blocks,
            key=lambda h: (-self._work[h], self._arrival[h]),
        )

    def path_to_genesis(self, block_hash: str) -> list[Block[TxT]]:
        """Blocks from genesis to *block_hash*, inclusive, in order."""
        path: list[Block[TxT]] = []
        cursor = block_hash
        while cursor != GENESIS_PARENT:
            block = self.block(cursor)
            path.append(block)
            cursor = block.header.parent_hash
        path.reverse()
        return path


class ForkChoice(Generic[TxT]):
    """Tracks the active chain over a :class:`BlockTree`."""

    def __init__(self) -> None:
        self.tree: BlockTree[TxT] = BlockTree()
        self._head: str | None = None

    @property
    def head(self) -> str | None:
        return self._head

    def head_block(self) -> Block[TxT] | None:
        return self.tree.block(self._head) if self._head else None

    def active_chain(self) -> list[Block[TxT]]:
        """The current best chain, genesis first."""
        if self._head is None:
            return []
        return self.tree.path_to_genesis(self._head)

    def receive(self, block: Block[TxT]) -> Reorg[TxT] | None:
        """Add *block* and switch heads if it creates a heavier chain.

        Returns the :class:`Reorg` describing the head change, or None
        when the head is unchanged (the block extended a losing fork).
        """
        self.tree.add(block)
        best = self.tree.heaviest_tip()
        assert best is not None
        if best == self._head:
            return None
        old_head = self._head
        self._head = best
        if old_head is None:
            applied = self.tree.path_to_genesis(best)
            return Reorg(
                rolled_back=(), applied=tuple(applied), new_head=best
            )
        old_path = self.tree.path_to_genesis(old_head)
        new_path = self.tree.path_to_genesis(best)
        fork_point = 0
        for old, new in zip(old_path, new_path):
            if old.block_hash != new.block_hash:
                break
            fork_point += 1
        return Reorg(
            rolled_back=tuple(reversed(old_path[fork_point:])),
            applied=tuple(new_path[fork_point:]),
            new_head=best,
        )
