"""Model-agnostic transaction interface.

Both data models produce objects satisfying :class:`BaseTransaction`;
the analysis layer (TDG construction, metrics) consumes only this
interface plus model-specific edge information supplied by adapters in
:mod:`repro.core.tdg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


@runtime_checkable
class BaseTransaction(Protocol):
    """Structural interface every substrate transaction satisfies."""

    @property
    def tx_hash(self) -> str:
        """Globally unique transaction identifier."""
        ...

    @property
    def is_coinbase(self) -> bool:
        """Whether this is a block-reward transaction (ignored in TDGs)."""
        ...


@dataclass(frozen=True)
class TransactionStub:
    """Minimal concrete transaction used by tests and generic tooling.

    Real workloads use :class:`repro.utxo.transaction.UTXOTransaction` or
    :class:`repro.account.transaction.AccountTransaction`; the stub exists
    so that chain-level structures (blocks, Merkle trees, ledgers) can be
    exercised without committing to a data model.
    """

    tx_hash: str
    is_coinbase: bool = False
    weight: float = 1.0
    payload: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.tx_hash:
            raise ValueError("tx_hash must be non-empty")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
