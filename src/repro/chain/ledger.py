"""The ledger: an append-only, link-validated sequence of blocks.

This is the "replicated, tamper-evident log" of §II-A, reduced to the
single-replica view the analysis needs.  The ledger enforces the three
structural invariants every block append must satisfy:

1. the new block's height is exactly one past the tip;
2. its parent hash equals the tip's block hash (genesis links to the
   all-zero hash);
3. its timestamp is not earlier than the tip's.

Semantic validation (UTXO availability, account nonces, gas) is the
responsibility of the per-model state machines, which the chain builders
in :mod:`repro.workload` wire in.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.chain.block import GENESIS_PARENT, Block
from repro.chain.errors import LinkError, ValidationError
from repro.chain.transaction import BaseTransaction

TxT = TypeVar("TxT", bound=BaseTransaction)


class Ledger(Generic[TxT]):
    """An in-memory chain of blocks with O(1) lookup by height and hash."""

    def __init__(self) -> None:
        self._blocks: list[Block[TxT]] = []
        self._by_hash: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block[TxT]]:
        return iter(self._blocks)

    @property
    def tip(self) -> Block[TxT] | None:
        """The most recent block, or None for an empty ledger."""
        return self._blocks[-1] if self._blocks else None

    def append(self, block: Block[TxT]) -> None:
        """Append *block*, enforcing the structural invariants.

        Raises:
            LinkError: when height or parent hash do not continue the tip.
            ValidationError: when the Merkle root or timestamp is invalid.
        """
        tip = self.tip
        if tip is None:
            if block.height != 0:
                raise LinkError(
                    f"genesis block must have height 0, got {block.height}"
                )
            if block.header.parent_hash != GENESIS_PARENT:
                raise LinkError("genesis block must link to the zero hash")
        else:
            if block.height != tip.height + 1:
                raise LinkError(
                    f"expected height {tip.height + 1}, got {block.height}"
                )
            if block.header.parent_hash != tip.block_hash:
                raise LinkError(
                    "parent hash does not match the current tip"
                )
            if block.header.timestamp < tip.header.timestamp:
                raise ValidationError("block timestamp precedes its parent")
        if not block.verify_merkle():
            raise ValidationError("Merkle root does not match transactions")
        self._by_hash[block.block_hash] = len(self._blocks)
        self._blocks.append(block)

    def block_at(self, height: int) -> Block[TxT]:
        """Return the block at *height* (negative indices not allowed)."""
        if not 0 <= height < len(self._blocks):
            raise IndexError(f"no block at height {height}")
        return self._blocks[height]

    def block_by_hash(self, block_hash: str) -> Block[TxT]:
        """Return the block with the given header hash."""
        try:
            return self._blocks[self._by_hash[block_hash]]
        except KeyError:
            raise KeyError(f"unknown block hash {block_hash!r}") from None

    def verify_links(self) -> bool:
        """Re-validate the whole hash chain; True when intact.

        Used by tests to demonstrate tamper evidence: a ledger rebuilt
        with any block modified fails either here or at append time.
        """
        previous = GENESIS_PARENT
        for expected_height, block in enumerate(self._blocks):
            if block.height != expected_height:
                return False
            if block.header.parent_hash != previous:
                return False
            if not block.verify_merkle():
                return False
            previous = block.block_hash
        return True

    def total_transactions(self, *, include_coinbase: bool = True) -> int:
        """Count transactions across all blocks."""
        if include_coinbase:
            return sum(len(block) for block in self._blocks)
        return sum(len(block.non_coinbase()) for block in self._blocks)
