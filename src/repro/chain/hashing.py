"""Deterministic content hashing for blocks and transactions.

All identifiers in the substrates are hex digests of SHA-256 over a
canonical serialisation.  Determinism matters twice over: first so that
re-running a workload generator with the same seed produces byte-identical
chains (and therefore byte-identical experiment results), and second so
that hashes can be used as stable node identifiers in the transaction
dependency graph.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

# Number of hex characters kept for a short display hash (as used in the
# paper's Figure 6, which labels transactions by the first four hex digits).
SHORT_HASH_LEN = 4


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of *data* as a lowercase hex string."""
    return hashlib.sha256(data).hexdigest()


def hash_fields(*fields: object) -> str:
    """Hash a heterogeneous tuple of fields into a stable identifier.

    Fields are serialised as ``repr`` joined by an unambiguous separator.
    ``repr`` is stable for the types we use (str, int, float, tuple) and
    avoids pulling in a serialisation library for what is a simulation
    substrate rather than a wire protocol.
    """
    payload = "\x1f".join(repr(field) for field in fields)
    return sha256_hex(payload.encode("utf-8"))


def hash_concat(parts: Iterable[str]) -> str:
    """Hash the concatenation of already-hex-encoded *parts*."""
    joined = "".join(parts)
    return sha256_hex(joined.encode("ascii"))


def short_hash(full_hash: str, length: int = SHORT_HASH_LEN) -> str:
    """Return the leading *length* hex digits of *full_hash*.

    Used for compact rendering of TDG examples (cf. paper Fig. 6).
    """
    if length <= 0:
        raise ValueError("length must be positive")
    return full_hash[:length]


def address_from_seed(seed: str, prefix: str = "0x") -> str:
    """Derive a 40-hex-character address from an arbitrary seed string.

    The account-model substrates identify accounts and contracts by
    Ethereum-style addresses; this helper keeps them deterministic.
    """
    return prefix + sha256_hex(seed.encode("utf-8"))[:40]
