"""Merkle tree over transaction hashes.

Blocks commit to their transaction list through a Merkle root, exactly as
Bitcoin-family and Ethereum-family chains do.  The tree also supports
inclusion proofs, which the tests use to check tamper-evidence — the
property that makes a blockchain ledger a *ledger*.

The construction follows Bitcoin's rule of duplicating the final hash of
an odd-length level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.chain.hashing import hash_concat


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for a single leaf.

    Attributes:
        leaf: the hash whose inclusion is proven.
        path: sibling hashes from leaf level to just below the root.
        directions: for each path element, True when the sibling is on the
            right of the running hash (i.e. the running hash is the left
            operand), False when it is on the left.
    """

    leaf: str
    path: tuple[str, ...]
    directions: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.path) != len(self.directions):
            raise ValueError("path and directions must have equal length")


class MerkleTree:
    """A binary Merkle tree over an ordered sequence of hex-string leaves."""

    def __init__(self, leaves: Sequence[str]):
        if not leaves:
            raise ValueError("Merkle tree requires at least one leaf")
        self._leaves = list(leaves)
        self._levels = self._build_levels(self._leaves)

    @staticmethod
    def _build_levels(leaves: list[str]) -> list[list[str]]:
        levels = [list(leaves)]
        while len(levels[-1]) > 1:
            current = levels[-1]
            if len(current) % 2 == 1:
                # Bitcoin-style: duplicate the last element of odd levels.
                current = current + [current[-1]]
            parent = [
                hash_concat((current[i], current[i + 1]))
                for i in range(0, len(current), 2)
            ]
            levels.append(parent)
        return levels

    @property
    def root(self) -> str:
        """The Merkle root committing to all leaves in order."""
        return self._levels[-1][0]

    @property
    def leaves(self) -> tuple[str, ...]:
        return tuple(self._leaves)

    def __len__(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Produce an inclusion proof for the leaf at *index*."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        path: list[str] = []
        directions: list[bool] = []
        position = index
        for level in self._levels[:-1]:
            padded = level if len(level) % 2 == 0 else level + [level[-1]]
            if position % 2 == 0:
                sibling = padded[position + 1]
                directions.append(True)
            else:
                sibling = padded[position - 1]
                directions.append(False)
            path.append(sibling)
            position //= 2
        return MerkleProof(
            leaf=self._leaves[index],
            path=tuple(path),
            directions=tuple(directions),
        )

    @staticmethod
    def verify(proof: MerkleProof, root: str) -> bool:
        """Check that *proof* authenticates its leaf against *root*."""
        running = proof.leaf
        for sibling, sibling_on_right in zip(proof.path, proof.directions):
            if sibling_on_right:
                running = hash_concat((running, sibling))
            else:
                running = hash_concat((sibling, running))
        return running == root


def merkle_root(leaves: Sequence[str]) -> str:
    """Convenience wrapper returning just the root of *leaves*."""
    return MerkleTree(leaves).root
