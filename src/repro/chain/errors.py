"""Exception hierarchy shared by all chain substrates.

Every substrate (UTXO, account, sharded) raises subclasses of
:class:`ChainError` so callers can catch validation problems uniformly
without depending on which data model produced them.
"""

from __future__ import annotations


class ChainError(Exception):
    """Base class for all errors raised by the chain substrates."""


class ValidationError(ChainError):
    """A block or transaction failed validation."""


class LinkError(ValidationError):
    """A block's parent pointer does not match the chain tip."""


class DoubleSpendError(ValidationError):
    """A transaction input references a TXO that is not in the UTXO set."""


class ValueConservationError(ValidationError):
    """Transaction outputs exceed inputs (minus fees)."""


class NonceError(ValidationError):
    """An account transaction carries an unexpected nonce."""


class InsufficientBalanceError(ValidationError):
    """An account cannot cover a transfer plus its gas cost."""


class OutOfGasError(ChainError):
    """Contract execution exhausted its gas allowance."""


class VMError(ChainError):
    """Contract execution failed for a reason other than gas."""


class ShardingError(ChainError):
    """A sharded-chain invariant was violated (e.g. cross-shard tx)."""


class DatasetError(ChainError):
    """The dataset layer was queried inconsistently."""
