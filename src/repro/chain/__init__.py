"""Generic blockchain substrate: blocks, Merkle trees, ledger.

This package is data-model agnostic; the UTXO and account substrates
build on it.
"""

from repro.chain.block import GENESIS_PARENT, Block, BlockHeader, build_block
from repro.chain.errors import (
    ChainError,
    DatasetError,
    DoubleSpendError,
    InsufficientBalanceError,
    LinkError,
    NonceError,
    OutOfGasError,
    ShardingError,
    ValidationError,
    ValueConservationError,
    VMError,
)
from repro.chain.forkchoice import BlockTree, ForkChoice, Reorg
from repro.chain.hashing import (
    address_from_seed,
    hash_concat,
    hash_fields,
    sha256_hex,
    short_hash,
)
from repro.chain.ledger import Ledger
from repro.chain.merkle import MerkleProof, MerkleTree, merkle_root
from repro.chain.transaction import BaseTransaction, TransactionStub

__all__ = [
    "GENESIS_PARENT",
    "Block",
    "BlockHeader",
    "build_block",
    "ChainError",
    "DatasetError",
    "DoubleSpendError",
    "InsufficientBalanceError",
    "LinkError",
    "NonceError",
    "OutOfGasError",
    "ShardingError",
    "ValidationError",
    "ValueConservationError",
    "VMError",
    "BlockTree",
    "ForkChoice",
    "Reorg",
    "address_from_seed",
    "hash_concat",
    "hash_fields",
    "sha256_hex",
    "short_hash",
    "Ledger",
    "MerkleProof",
    "MerkleTree",
    "merkle_root",
    "BaseTransaction",
    "TransactionStub",
]
