"""Tests for the ledger's append invariants and tamper evidence."""

from __future__ import annotations

import pytest

from repro.chain.block import GENESIS_PARENT, build_block
from repro.chain.errors import LinkError, ValidationError
from repro.chain.ledger import Ledger
from repro.chain.transaction import TransactionStub


def _block(height, parent, timestamp=None, tag=""):
    return build_block(
        [TransactionStub(tx_hash=f"tx-{height}-{tag}")],
        height=height,
        parent_hash=parent,
        timestamp=float(height) if timestamp is None else timestamp,
    )


def _chain(length: int) -> Ledger:
    ledger = Ledger()
    parent = GENESIS_PARENT
    for height in range(length):
        block = _block(height, parent)
        ledger.append(block)
        parent = block.block_hash
    return ledger


class TestAppend:
    def test_genesis_must_have_height_zero(self):
        ledger = Ledger()
        with pytest.raises(LinkError):
            ledger.append(_block(1, GENESIS_PARENT))

    def test_genesis_must_link_zero_hash(self):
        ledger = Ledger()
        with pytest.raises(LinkError):
            ledger.append(_block(0, "f" * 64))

    def test_height_must_increment(self):
        ledger = _chain(2)
        with pytest.raises(LinkError):
            ledger.append(_block(3, ledger.tip.block_hash))

    def test_parent_hash_must_match_tip(self):
        ledger = _chain(2)
        with pytest.raises(LinkError):
            ledger.append(_block(2, "0" * 64))

    def test_timestamp_must_not_regress(self):
        ledger = _chain(2)
        with pytest.raises(ValidationError):
            ledger.append(
                _block(2, ledger.tip.block_hash, timestamp=0.5)
            )

    def test_merkle_must_verify(self):
        from dataclasses import replace

        ledger = _chain(1)
        good = _block(1, ledger.tip.block_hash)
        bad = replace(
            good,
            transactions=(TransactionStub(tx_hash="swapped"),),
        )
        with pytest.raises(ValidationError):
            ledger.append(bad)


class TestLookupsAndVerification:
    def test_block_at_and_by_hash(self):
        ledger = _chain(5)
        block = ledger.block_at(3)
        assert block.height == 3
        assert ledger.block_by_hash(block.block_hash) is block

    def test_block_at_out_of_range(self):
        ledger = _chain(2)
        with pytest.raises(IndexError):
            ledger.block_at(2)

    def test_unknown_hash(self):
        ledger = _chain(1)
        with pytest.raises(KeyError):
            ledger.block_by_hash("nope")

    def test_verify_links_on_intact_chain(self):
        assert _chain(10).verify_links()

    def test_verify_links_detects_tampering(self):
        ledger = _chain(5)
        # Reach into internals to simulate on-disk corruption.
        ledger._blocks[2] = _block(2, "f" * 64, tag="tampered")
        assert not ledger.verify_links()

    def test_total_transactions(self, small_bitcoin_ledger):
        with_cb = small_bitcoin_ledger.total_transactions()
        without_cb = small_bitcoin_ledger.total_transactions(
            include_coinbase=False
        )
        assert with_cb == without_cb + len(small_bitcoin_ledger)

    def test_tip_none_when_empty(self):
        assert Ledger().tip is None
