"""Tests for the block tree, heaviest-chain rule, and reorgs."""

from __future__ import annotations

import pytest

from repro.chain.block import GENESIS_PARENT, build_block
from repro.chain.errors import LinkError, ValidationError
from repro.chain.forkchoice import BlockTree, ForkChoice
from repro.chain.transaction import TransactionStub
from repro.utxo.transaction import TxOutputSpec, make_coinbase, make_transaction
from repro.utxo.txo import COIN
from repro.utxo.utxo_set import UTXOSet


def _block(height, parent, difficulty=1.0, tag="", timestamp=None):
    return build_block(
        [TransactionStub(tx_hash=f"tx-{height}-{tag}")],
        height=height,
        parent_hash=parent,
        timestamp=float(height) if timestamp is None else timestamp,
        difficulty=difficulty,
    )


class TestBlockTree:
    def test_add_and_work_accumulates(self):
        tree = BlockTree()
        genesis = _block(0, GENESIS_PARENT, difficulty=2.0)
        tree.add(genesis)
        child = _block(1, genesis.block_hash, difficulty=3.0)
        tree.add(child)
        assert tree.work(child.block_hash) == pytest.approx(5.0)

    def test_unknown_parent_rejected(self):
        tree = BlockTree()
        with pytest.raises(LinkError):
            tree.add(_block(1, "f" * 64))

    def test_duplicate_rejected(self):
        tree = BlockTree()
        genesis = _block(0, GENESIS_PARENT)
        tree.add(genesis)
        with pytest.raises(ValidationError):
            tree.add(genesis)

    def test_height_must_follow_parent(self):
        tree = BlockTree()
        genesis = _block(0, GENESIS_PARENT)
        tree.add(genesis)
        with pytest.raises(LinkError):
            tree.add(_block(5, genesis.block_hash))

    def test_path_to_genesis(self):
        tree = BlockTree()
        genesis = _block(0, GENESIS_PARENT)
        tree.add(genesis)
        child = _block(1, genesis.block_hash)
        tree.add(child)
        path = tree.path_to_genesis(child.block_hash)
        assert [b.height for b in path] == [0, 1]

    def test_heaviest_tip_prefers_work_over_length(self):
        tree = BlockTree()
        genesis = _block(0, GENESIS_PARENT)
        tree.add(genesis)
        # Long light fork: two blocks of difficulty 1.
        light1 = _block(1, genesis.block_hash, difficulty=1.0, tag="l")
        light2 = _block(2, light1.block_hash, difficulty=1.0, tag="l")
        tree.add(light1)
        tree.add(light2)
        # Short heavy fork: one block of difficulty 5.
        heavy = _block(1, genesis.block_hash, difficulty=5.0, tag="h")
        tree.add(heavy)
        assert tree.heaviest_tip() == heavy.block_hash

    def test_first_seen_wins_ties(self):
        tree = BlockTree()
        genesis = _block(0, GENESIS_PARENT)
        tree.add(genesis)
        first = _block(1, genesis.block_hash, tag="first")
        second = _block(1, genesis.block_hash, tag="second")
        tree.add(first)
        tree.add(second)
        assert tree.heaviest_tip() == first.block_hash


class TestForkChoice:
    def _bootstrap(self):
        fc = ForkChoice()
        genesis = _block(0, GENESIS_PARENT)
        reorg = fc.receive(genesis)
        assert reorg is not None and reorg.is_extension
        return fc, genesis

    def test_extension_reports_no_rollback(self):
        fc, genesis = self._bootstrap()
        child = _block(1, genesis.block_hash)
        reorg = fc.receive(child)
        assert reorg is not None
        assert reorg.is_extension
        assert [b.height for b in reorg.applied] == [1]
        assert fc.head == child.block_hash

    def test_losing_fork_does_not_move_head(self):
        fc, genesis = self._bootstrap()
        main1 = _block(1, genesis.block_hash, difficulty=2.0, tag="m")
        fc.receive(main1)
        side1 = _block(1, genesis.block_hash, difficulty=1.0, tag="s")
        assert fc.receive(side1) is None
        assert fc.head == main1.block_hash

    def test_overtaking_fork_triggers_reorg(self):
        fc, genesis = self._bootstrap()
        main1 = _block(1, genesis.block_hash, tag="m")
        main2 = _block(2, main1.block_hash, tag="m")
        fc.receive(main1)
        fc.receive(main2)
        side1 = _block(1, genesis.block_hash, difficulty=1.5, tag="s")
        side2 = _block(2, side1.block_hash, difficulty=1.5, tag="s")
        assert fc.receive(side1) is None  # still losing (1.5 < 2)
        reorg = fc.receive(side2)         # 3.0 + genesis > 2.0 + genesis
        assert reorg is not None
        assert reorg.depth == 2
        assert [b.height for b in reorg.rolled_back] == [2, 1]
        assert [b.height for b in reorg.applied] == [1, 2]
        assert fc.head == side2.block_hash
        assert [b.height for b in fc.active_chain()] == [0, 1, 2]

    def test_reorg_replays_cleanly_on_utxo_state(self):
        """End-to-end: a reorg's rollback + apply keeps state consistent."""
        # Build two competing UTXO block-1 candidates over one genesis.
        cb0 = make_coinbase(reward=50 * COIN, miner="m", height=0)
        genesis = build_block(
            [cb0], height=0, parent_hash=GENESIS_PARENT, timestamp=0.0
        )
        cb1a = make_coinbase(reward=50 * COIN, miner="a", height=1)
        spend_a = make_transaction(
            inputs=[cb0.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="alice")],
            nonce="a",
        )
        block_a = build_block(
            [cb1a, spend_a],
            height=1,
            parent_hash=genesis.block_hash,
            timestamp=1.0,
            difficulty=1.0,
        )
        cb1b = make_coinbase(reward=50 * COIN, miner="b", height=1)
        spend_b = make_transaction(
            inputs=[cb0.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="bob")],
            nonce="b",
        )
        block_b = build_block(
            [cb1b, spend_b],
            height=1,
            parent_hash=genesis.block_hash,
            timestamp=1.0,
            difficulty=2.0,
        )

        fc = ForkChoice()
        state = UTXOSet()
        undos = {}

        for block in (genesis, block_a):
            reorg = fc.receive(block)
            assert reorg is not None
            for applied in reorg.applied:
                undos[applied.block_hash] = state.apply_block(
                    applied.transactions
                )
        assert state.balance_of("alice") == 50 * COIN

        reorg = fc.receive(block_b)  # heavier: triggers the reorg
        assert reorg is not None and reorg.depth == 1
        for rolled in reorg.rolled_back:
            state.revert_block(undos.pop(rolled.block_hash))
        for applied in reorg.applied:
            undos[applied.block_hash] = state.apply_block(
                applied.transactions
            )
        assert state.balance_of("alice") == 0
        assert state.balance_of("bob") == 50 * COIN
