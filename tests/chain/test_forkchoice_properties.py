"""Property-based tests for fork choice over random block trees."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import GENESIS_PARENT, build_block
from repro.chain.forkchoice import ForkChoice
from repro.chain.transaction import TransactionStub


def _block(height, parent, difficulty, tag):
    return build_block(
        [TransactionStub(tx_hash=f"tx-{height}-{tag}")],
        height=height,
        parent_hash=parent,
        timestamp=float(height),
        difficulty=difficulty,
    )


# Each step: (parent_choice, difficulty_index) — parent chosen among
# already-added blocks, difficulty from a small palette.
tree_scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([0.5, 1.0, 2.0, 3.5]),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=150, deadline=None)
@given(script=tree_scripts)
def test_head_is_always_the_heaviest_tip(script):
    fc = ForkChoice()
    genesis = _block(0, GENESIS_PARENT, 1.0, "g")
    fc.receive(genesis)
    blocks = [genesis]
    for index, (parent_choice, difficulty) in enumerate(script):
        parent = blocks[parent_choice % len(blocks)]
        block = _block(
            parent.height + 1, parent.block_hash, difficulty, f"b{index}"
        )
        fc.receive(block)
        blocks.append(block)

    # Invariant 1: the head has maximal cumulative work.
    head_work = fc.tree.work(fc.head)
    for block in blocks:
        assert fc.tree.work(block.block_hash) <= head_work + 1e-9

    # Invariant 2: the active chain is a valid hash chain from genesis.
    chain = fc.active_chain()
    assert chain[0].block_hash == genesis.block_hash
    for parent, child in zip(chain, chain[1:]):
        assert child.header.parent_hash == parent.block_hash
        assert child.height == parent.height + 1

    # Invariant 3: the chain ends at the head.
    assert chain[-1].block_hash == fc.head


@settings(max_examples=100, deadline=None)
@given(script=tree_scripts)
def test_reorgs_exactly_bridge_old_and_new_heads(script):
    """rolled_back undoes the old suffix, applied builds the new one."""
    fc = ForkChoice()
    genesis = _block(0, GENESIS_PARENT, 1.0, "g")
    fc.receive(genesis)
    blocks = [genesis]
    active: list[str] = [genesis.block_hash]
    for index, (parent_choice, difficulty) in enumerate(script):
        parent = blocks[parent_choice % len(blocks)]
        block = _block(
            parent.height + 1, parent.block_hash, difficulty, f"b{index}"
        )
        reorg = fc.receive(block)
        blocks.append(block)
        if reorg is not None:
            # Apply the reorg to our shadow copy of the active chain.
            for rolled in reorg.rolled_back:
                assert active[-1] == rolled.block_hash
                active.pop()
            for applied in reorg.applied:
                active.append(applied.block_hash)
        # The shadow chain always matches the fork choice's view.
        assert active == [b.block_hash for b in fc.active_chain()]
