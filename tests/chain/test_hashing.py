"""Tests for deterministic hashing helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.hashing import (
    address_from_seed,
    hash_concat,
    hash_fields,
    sha256_hex,
    short_hash,
)


class TestSha256Hex:
    def test_known_vector(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_length_and_charset(self):
        digest = sha256_hex(b"blockchain")
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestHashFields:
    def test_deterministic(self):
        assert hash_fields("a", 1, (2, 3)) == hash_fields("a", 1, (2, 3))

    def test_field_order_matters(self):
        assert hash_fields("a", "b") != hash_fields("b", "a")

    def test_no_concatenation_ambiguity(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert hash_fields("ab", "c") != hash_fields("a", "bc")

    def test_type_sensitivity(self):
        assert hash_fields(1) != hash_fields("1")

    @given(st.lists(st.text(), min_size=1, max_size=5))
    def test_always_64_hex_chars(self, fields):
        digest = hash_fields(*fields)
        assert len(digest) == 64


class TestShortHash:
    def test_prefix(self):
        assert short_hash("abcdef0123", 4) == "abcd"

    def test_default_length(self):
        assert len(short_hash("f" * 64)) == 4

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            short_hash("abcd", 0)


class TestAddressFromSeed:
    def test_shape(self):
        address = address_from_seed("user1")
        assert address.startswith("0x")
        assert len(address) == 42

    def test_distinct_seeds_distinct_addresses(self):
        assert address_from_seed("a") != address_from_seed("b")

    def test_custom_prefix(self):
        assert address_from_seed("a", prefix="zil").startswith("zil")


class TestHashConcat:
    def test_order_sensitivity(self):
        assert hash_concat(("aa", "bb")) != hash_concat(("bb", "aa"))

    def test_matches_manual_concat(self):
        assert hash_concat(("ab", "cd")) == sha256_hex(b"abcd")
