"""Tests for the Merkle tree and inclusion proofs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.hashing import sha256_hex
from repro.chain.merkle import MerkleTree, merkle_root

leaf = st.text(alphabet="0123456789abcdef", min_size=8, max_size=8)


def _leaves(n: int) -> list[str]:
    return [sha256_hex(str(i).encode()) for i in range(n)]


class TestMerkleTree:
    def test_single_leaf_root_is_leaf(self):
        leaves = _leaves(1)
        assert MerkleTree(leaves).root == leaves[0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_root_changes_with_any_leaf(self):
        leaves = _leaves(5)
        baseline = merkle_root(leaves)
        for index in range(5):
            mutated = list(leaves)
            mutated[index] = sha256_hex(b"tampered")
            assert merkle_root(mutated) != baseline

    def test_root_changes_with_leaf_order(self):
        leaves = _leaves(4)
        swapped = [leaves[1], leaves[0], *leaves[2:]]
        assert merkle_root(leaves) != merkle_root(swapped)

    def test_odd_level_duplication_matches_bitcoin_rule(self):
        # With 3 leaves the last is duplicated: root equals the root of
        # the 4-leaf tree [a, b, c, c].
        a, b, c = _leaves(3)
        assert merkle_root([a, b, c]) == merkle_root([a, b, c, c])

    @given(st.integers(min_value=1, max_value=33))
    def test_len_matches_leaf_count(self, n):
        assert len(MerkleTree(_leaves(n))) == n


class TestMerkleProofs:
    @given(st.integers(min_value=1, max_value=20))
    def test_every_proof_verifies(self, n):
        tree = MerkleTree(_leaves(n))
        for index in range(n):
            proof = tree.proof(index)
            assert MerkleTree.verify(proof, tree.root)

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.proof(3)
        other = MerkleTree(_leaves(9))
        assert not MerkleTree.verify(proof, other.root)

    def test_tampered_leaf_fails(self):
        from dataclasses import replace

        tree = MerkleTree(_leaves(8))
        proof = replace(tree.proof(2), leaf=sha256_hex(b"evil"))
        assert not MerkleTree.verify(proof, tree.root)

    def test_out_of_range_index(self):
        tree = MerkleTree(_leaves(4))
        with pytest.raises(IndexError):
            tree.proof(4)

    def test_mismatched_path_direction_lengths_rejected(self):
        from repro.chain.merkle import MerkleProof

        with pytest.raises(ValueError):
            MerkleProof(leaf="aa", path=("bb",), directions=())
