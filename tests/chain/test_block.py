"""Tests for blocks and headers."""

from __future__ import annotations

import pytest

from repro.chain.block import GENESIS_PARENT, BlockHeader, build_block
from repro.chain.transaction import TransactionStub


def _stub(name: str, coinbase: bool = False) -> TransactionStub:
    return TransactionStub(tx_hash=f"hash-{name}", is_coinbase=coinbase)


def _block(names, height=0, parent=GENESIS_PARENT, timestamp=0.0):
    return build_block(
        [_stub(n, coinbase=(i == 0)) for i, n in enumerate(names)],
        height=height,
        parent_hash=parent,
        timestamp=timestamp,
    )


class TestBlockHeader:
    def test_hash_covers_all_fields(self):
        base = dict(
            height=1,
            parent_hash="p" * 64,
            merkle_root="m" * 64,
            timestamp=10.0,
            difficulty=2.0,
            nonce=7,
            miner="alice",
            extra="",
        )
        reference = BlockHeader(**base).block_hash
        for field_name, new_value in [
            ("height", 2),
            ("parent_hash", "q" * 64),
            ("merkle_root", "n" * 64),
            ("timestamp", 11.0),
            ("difficulty", 3.0),
            ("nonce", 8),
            ("miner", "bob"),
            ("extra", "shard=1"),
        ]:
            mutated = dict(base, **{field_name: new_value})
            assert BlockHeader(**mutated).block_hash != reference, field_name

    def test_rejects_negative_height(self):
        with pytest.raises(ValueError):
            BlockHeader(
                height=-1, parent_hash="p", merkle_root="m", timestamp=0.0
            )

    def test_rejects_non_positive_difficulty(self):
        with pytest.raises(ValueError):
            BlockHeader(
                height=0,
                parent_hash="p",
                merkle_root="m",
                timestamp=0.0,
                difficulty=0.0,
            )


class TestBuildBlock:
    def test_merkle_commitment_verifies(self):
        block = _block(["cb", "a", "b"])
        assert block.verify_merkle()

    def test_rejects_empty_transaction_list(self):
        with pytest.raises(ValueError):
            build_block(
                [], height=0, parent_hash=GENESIS_PARENT, timestamp=0.0
            )

    def test_non_coinbase_filters(self):
        block = _block(["cb", "a", "b"])
        hashes = [tx.tx_hash for tx in block.non_coinbase()]
        assert hashes == ["hash-a", "hash-b"]

    def test_len_and_iter(self):
        block = _block(["cb", "a"])
        assert len(block) == 2
        assert [tx.tx_hash for tx in block] == ["hash-cb", "hash-a"]

    def test_tampered_transaction_breaks_merkle(self):
        from dataclasses import replace

        block = _block(["cb", "a", "b"])
        tampered = replace(
            block,
            transactions=(
                *block.transactions[:-1],
                _stub("evil"),
            ),
        )
        assert not tampered.verify_merkle()
