"""Transport contract tests: seeded faults and the TCP framing path."""

from __future__ import annotations

import pytest

from repro.node.runtime import AsyncioRuntime, VirtualRuntime
from repro.node.transport import (
    FaultProfile,
    Frame,
    MemoryTransport,
    TcpTransport,
)


def _deliveries(seed: int, faults: FaultProfile, n: int = 200):
    """Send *n* frames a->b under the virtual clock; return the
    arrival log and sender-side stats."""
    runtime = VirtualRuntime()
    transport = MemoryTransport(runtime, faults=faults, seed=seed)
    transport.register("a")
    inbox = transport.register("b")
    log: list[tuple[int, float]] = []

    async def consumer() -> None:
        while True:
            frame = await inbox.get()
            log.append((frame.payload, runtime.now()))

    async def main() -> None:
        runtime.spawn(consumer())
        for i in range(n):
            transport.send("b", Frame("tx", "a", i))
        await runtime.sleep(60.0)

    runtime.run_until_complete(main())
    return log, transport.stats


class TestFaultProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(latency=0.0)
        with pytest.raises(ValueError):
            FaultProfile(loss=1.0)
        with pytest.raises(ValueError):
            FaultProfile(jitter=1.5)
        with pytest.raises(ValueError):
            FaultProfile(reorder_delay=-1.0)


class TestMemoryTransport:
    def test_lossless_default_delivers_everything(self):
        log, stats = _deliveries(7, FaultProfile(jitter=0.0))
        assert [payload for payload, _ in log] == list(range(200))
        assert stats.sent == 200
        assert stats.lost == 0

    def test_fault_schedule_is_seed_deterministic(self):
        faults = FaultProfile(loss=0.2, duplicate=0.1, reorder=0.3)
        first = _deliveries(42, faults)
        second = _deliveries(42, faults)
        assert first[0] == second[0]
        assert (first[1].lost, first[1].duplicated) == (
            second[1].lost, second[1].duplicated,
        )

    def test_different_seed_different_schedule(self):
        faults = FaultProfile(loss=0.2, duplicate=0.1, reorder=0.3)
        first = _deliveries(1, faults)
        second = _deliveries(2, faults)
        assert first[0] != second[0]

    def test_loss_drops_and_counts(self):
        log, stats = _deliveries(9, FaultProfile(loss=0.5))
        assert stats.lost > 0
        assert len(log) == 200 - stats.lost

    def test_duplication_delivers_extra_copies(self):
        log, stats = _deliveries(9, FaultProfile(duplicate=0.5))
        assert stats.duplicated > 0
        assert len(log) == 200 + stats.duplicated

    def test_reorder_shuffles_arrival_order(self):
        log, _stats = _deliveries(
            5, FaultProfile(reorder=0.5, jitter=0.0)
        )
        payloads = [payload for payload, _ in log]
        assert sorted(payloads) == list(range(200))
        assert payloads != list(range(200))

    def test_unknown_destination(self):
        runtime = VirtualRuntime()
        transport = MemoryTransport(runtime)
        with pytest.raises(KeyError):
            transport.send("ghost", Frame("tx", "a", 1))

    def test_duplicate_registration_rejected(self):
        runtime = VirtualRuntime()
        transport = MemoryTransport(runtime)
        transport.register("a")
        with pytest.raises(ValueError):
            transport.register("a")


class TestTcpTransport:
    def test_roundtrip_preserves_order_and_payload(self):
        runtime = AsyncioRuntime()

        async def main() -> list:
            transport = TcpTransport(runtime)
            transport.register("a")
            inbox = transport.register("b")
            await transport.start()
            for i in range(50):
                transport.send("b", Frame("tx", "a", {"i": i}))
            got = [await inbox.get() for _ in range(50)]
            await transport.close()
            return got

        frames = runtime.run_until_complete(main())
        assert [frame.payload["i"] for frame in frames] == list(range(50))
        assert all(frame.src == "a" for frame in frames)
