"""Multi-node network integration: convergence, determinism, faults,
bounded relay memory, and lifecycle traces across a live network."""

from __future__ import annotations

import pytest

from repro import obs
from repro.node import (
    FaultProfile,
    NetworkConfig,
    NodeNetwork,
    build_node_txs,
    network_fingerprint,
)
from repro.workload.profiles import PROFILES_BY_NAME


def _small(**overrides) -> NetworkConfig:
    defaults = dict(
        nodes=3, height=2, workload_blocks=2, scale=0.2, seed=11,
    )
    defaults.update(overrides)
    return NetworkConfig(**defaults)


class TestConvergence:
    def test_lossless_network_converges_with_identical_roots(self):
        result = NodeNetwork(_small()).run()
        assert result.converged, result.reason
        assert result.height >= 2
        assert result.roots_agree
        assert len({s.head_hash for s in result.snapshots}) == 1
        assert len({s.pool_hashes for s in result.snapshots}) == 1
        assert not any(s.diverged for s in result.snapshots)

    def test_four_nodes_to_issue_height(self):
        result = NodeNetwork(
            _small(nodes=4, height=5, workload_blocks=3, seed=2020)
        ).run()
        assert result.converged, result.reason
        assert result.height >= 5
        assert result.roots_agree

    def test_pbft_consensus_converges(self):
        result = NodeNetwork(_small(consensus="pbft", nodes=4)).run()
        assert result.converged, result.reason
        assert result.roots_agree

    def test_faulty_links_still_converge(self):
        result = NodeNetwork(_small(
            seed=5,
            faults=FaultProfile(
                loss=0.1, duplicate=0.1, reorder=0.3
            ),
        )).run()
        assert result.converged, result.reason
        assert result.roots_agree

    def test_timeout_reported_not_raised(self):
        result = NodeNetwork(_small(max_sim_time=1.0)).run()
        assert not result.converged
        assert result.reason == "timeout"


class TestDeterminism:
    def test_same_seed_same_snapshot_byte_for_byte(self):
        config = _small(faults=FaultProfile(loss=0.05, reorder=0.2))
        first = NodeNetwork(config).run()
        second = NodeNetwork(config).run()
        assert first.snapshot_dict() == second.snapshot_dict()
        assert network_fingerprint(first) == network_fingerprint(second)

    def test_different_seed_different_fingerprint(self):
        first = NodeNetwork(_small(seed=1)).run()
        second = NodeNetwork(_small(seed=2)).run()
        assert network_fingerprint(first) != network_fingerprint(second)


class TestBoundedRelayMemory:
    def test_seen_caches_stay_bounded_under_soak(self):
        # A capacity far below the tx volume forces evictions; the
        # caches must stay bounded and the network must still converge
        # (dedup is an optimisation, never a correctness lever).
        network = NodeNetwork(_small(seed=3, seen_capacity=16))
        result = network.run()
        assert result.converged, result.reason
        assert result.roots_agree
        total_evictions = 0
        for node in network.nodes:
            assert len(node.seen_txs) <= 16
            assert len(node.seen_blocks) <= 16
            total_evictions += node.seen_txs.evictions
        assert total_evictions > 0


class TestLifecycleAcrossNetwork:
    def test_one_monotonic_trace_per_injected_tx(self):
        config = _small(seed=11)
        profile = PROFILES_BY_NAME[config.chain]
        txs = build_node_txs(
            profile,
            blocks=config.workload_blocks,
            seed=config.seed,
            scale=config.scale,
        )
        with obs.instrumented() as state:
            result = NodeNetwork(config).run()
        assert result.converged, result.reason
        assert result.injected == len(txs)
        traces = state.lifecycle.traces()
        by_id = {t.trace_id: t for t in traces}
        # Exactly one trace per injected transaction — begins are
        # guarded at first pool admission, relays never re-mint.
        assert len(by_id) == len(traces)
        assert set(by_id) == {tx.tx_hash for tx in txs}
        for trace in traces:
            assert trace.is_monotonic()
            assert trace.events[0].stage == "admitted"
        closed = [t for t in traces if t.closed]
        assert closed, "no transaction reached a terminal stage"
        for trace in closed:
            assert trace.outcome == "committed"

    def test_node_metrics_land_in_registry(self):
        with obs.instrumented() as state:
            result = NodeNetwork(_small()).run()
        assert result.converged
        counters = state.registry.snapshot()["counters"]
        assert counters.get("node.net.sent", 0) > 0
        assert counters.get("mempool.admitted", 0) > 0
        gauges = state.registry.snapshot()["gauges"]
        assert gauges.get("node.network.height", 0) >= 2


class TestWorkload:
    def test_build_node_txs_deterministic_and_fee_spread(self):
        profile = PROFILES_BY_NAME["ethereum"]
        first = build_node_txs(profile, blocks=2, seed=4, scale=0.3)
        second = build_node_txs(profile, blocks=2, seed=4, scale=0.3)
        assert [(t.tx_hash, t.fee, t.weight) for t in first] == [
            (t.tx_hash, t.fee, t.weight) for t in second
        ]
        rates = {tx.fee / tx.weight for tx in first}
        assert len(rates) > 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(nodes=1)
        with pytest.raises(ValueError):
            NetworkConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            NetworkConfig(height=0)


class TestTcpTransport:
    def test_small_tcp_network_converges(self):
        result = NodeNetwork(NetworkConfig(
            nodes=2, height=2, workload_blocks=2, scale=0.2,
            seed=11, transport="tcp", block_interval=0.2,
            heartbeat=0.1, check_interval=0.05, max_sim_time=60.0,
        )).run()
        assert result.converged, result.reason
        assert result.roots_agree
