"""The virtual discrete-event scheduler: ordering, queues, clocks.

These tests pin the properties the whole node subsystem leans on —
``(time, seq)`` wake order, zero wall-clock dependence, queue fairness,
and deadlock detection — plus the asyncio runtime's surface parity.
"""

from __future__ import annotations

import time

import pytest

from repro.node.runtime import AsyncioRuntime, VirtualRuntime


class TestVirtualRuntime:
    def test_sleep_orders_by_deadline(self):
        runtime = VirtualRuntime()
        log: list[tuple[str, float]] = []

        async def sleeper(name: str, delay: float) -> None:
            await runtime.sleep(delay)
            log.append((name, runtime.now()))

        async def main() -> None:
            runtime.spawn(sleeper("late", 3.0))
            runtime.spawn(sleeper("early", 1.0))
            runtime.spawn(sleeper("mid", 2.0))
            await runtime.sleep(5.0)

        runtime.run_until_complete(main())
        assert log == [("early", 1.0), ("mid", 2.0), ("late", 3.0)]

    def test_simultaneous_wakes_preserve_spawn_order(self):
        runtime = VirtualRuntime()
        log: list[str] = []

        async def worker(name: str) -> None:
            await runtime.sleep(1.0)
            log.append(name)

        async def main() -> None:
            for name in ("a", "b", "c", "d"):
                runtime.spawn(worker(name))
            await runtime.sleep(2.0)

        runtime.run_until_complete(main())
        assert log == ["a", "b", "c", "d"]

    def test_no_wall_clock_dependence(self):
        # A thousand simulated seconds must cost (almost) no real time.
        runtime = VirtualRuntime()

        async def main() -> float:
            await runtime.sleep(1000.0)
            return runtime.now()

        started = time.perf_counter()
        result = runtime.run_until_complete(main())
        elapsed = time.perf_counter() - started
        assert result == 1000.0
        assert elapsed < 1.0

    def test_queue_roundtrip_and_fifo(self):
        runtime = VirtualRuntime()
        queue = runtime.new_queue()
        got: list[object] = []

        async def consumer() -> None:
            for _ in range(3):
                got.append(await queue.get())

        async def main() -> None:
            runtime.spawn(consumer())
            queue.put_nowait(1)
            queue.put_nowait(2)
            await runtime.sleep(0.1)
            queue.put_nowait(3)
            await runtime.sleep(0.1)

        runtime.run_until_complete(main())
        assert got == [1, 2, 3]

    def test_queue_wakes_parked_consumer(self):
        runtime = VirtualRuntime()
        queue = runtime.new_queue()
        woken_at: list[float] = []

        async def consumer() -> None:
            woken_at.append((await queue.get(), runtime.now()))

        async def main() -> None:
            runtime.spawn(consumer())
            await runtime.sleep(4.0)
            queue.put_nowait("item")
            await runtime.sleep(0.1)

        runtime.run_until_complete(main())
        assert woken_at == [("item", 4.0)]

    def test_call_later_fires_at_deadline(self):
        runtime = VirtualRuntime()
        fired: list[float] = []

        async def main() -> None:
            runtime.call_later(2.5, lambda: fired.append(runtime.now()))
            await runtime.sleep(5.0)

        runtime.run_until_complete(main())
        assert fired == [2.5]

    def test_deadlock_detected(self):
        runtime = VirtualRuntime()
        queue = runtime.new_queue()

        async def main() -> None:
            await queue.get()  # nobody will ever put

        with pytest.raises(RuntimeError, match="deadlock"):
            runtime.run_until_complete(main())

    def test_foreign_awaitable_rejected(self):
        import asyncio

        runtime = VirtualRuntime()

        async def main() -> None:
            await asyncio.sleep(0)

        with pytest.raises(RuntimeError, match="non-virtual"):
            runtime.run_until_complete(main())

    def test_service_loops_closed_after_main_returns(self):
        runtime = VirtualRuntime()
        queue = runtime.new_queue()

        async def forever() -> None:
            while True:
                await queue.get()

        async def main() -> str:
            runtime.spawn(forever())
            await runtime.sleep(1.0)
            return "done"

        assert runtime.run_until_complete(main()) == "done"
        assert not runtime._live

    def test_determinism_across_runs(self):
        def run() -> list:
            runtime = VirtualRuntime()
            log: list = []
            queue = runtime.new_queue()

            async def producer() -> None:
                for i in range(5):
                    await runtime.sleep(0.3)
                    queue.put_nowait(i)

            async def consumer(name: str) -> None:
                while True:
                    log.append((name, await queue.get(), runtime.now()))

            async def main() -> None:
                runtime.spawn(producer())
                runtime.spawn(consumer("x"))
                runtime.spawn(consumer("y"))
                await runtime.sleep(2.0)

            runtime.run_until_complete(main())
            return log

        assert run() == run()


class TestAsyncioRuntime:
    def test_same_surface_runs_real_coroutines(self):
        runtime = AsyncioRuntime()
        log: list[str] = []

        async def worker() -> None:
            await runtime.sleep(0.01)
            log.append("worker")

        async def main() -> float:
            queue = runtime.new_queue()
            runtime.spawn(worker())
            queue.put_nowait("hello")
            assert await queue.get() == "hello"
            await runtime.sleep(0.05)
            return runtime.now()

        now = runtime.run_until_complete(main())
        assert log == ["worker"]
        assert now >= 0.05
        assert runtime.is_virtual is False

    def test_leftover_tasks_cancelled(self):
        runtime = AsyncioRuntime()

        async def forever() -> None:
            while True:
                await runtime.sleep(60.0)

        async def main() -> str:
            runtime.spawn(forever())
            return "done"

        assert runtime.run_until_complete(main()) == "done"
