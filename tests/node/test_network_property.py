"""Property suite: honest nodes converge under arbitrary seeded faults.

Hypothesis drives the virtual transport through seeded loss,
duplication and reordering and asserts the two invariants the paper's
network model rests on:

* **Convergence** — every honest node ends with the same head, the
  same byte-identical chain state root, and the same mempool.
* **Trace integrity** — every injected transaction yields exactly one
  lifecycle trace, and that trace is monotonic in simulated time no
  matter how the network shuffled its frames.

Networks are deliberately tiny (3 nodes, height 2, scaled-down
workload) so each example costs well under a second; the fault space
is where the value is, not the network size.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.node import (
    FaultProfile,
    NetworkConfig,
    NodeNetwork,
    build_node_txs,
)
from repro.workload.profiles import PROFILES_BY_NAME

_EXAMPLES = 8

fault_profiles = st.builds(
    FaultProfile,
    loss=st.floats(min_value=0.0, max_value=0.25),
    duplicate=st.floats(min_value=0.0, max_value=0.25),
    reorder=st.floats(min_value=0.0, max_value=0.5),
)


def _run(seed: int, faults: FaultProfile):
    config = NetworkConfig(
        nodes=3, height=2, workload_blocks=2, scale=0.15,
        seed=seed, faults=faults, max_sim_time=300.0,
    )
    network = NodeNetwork(config)
    with obs.instrumented() as state:
        result = network.run()
    return config, result, state


@settings(
    max_examples=_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    faults=fault_profiles,
)
def test_honest_nodes_converge_to_identical_state(seed, faults):
    config, result, _state = _run(seed, faults)
    assert result.converged, (
        f"seed={seed} faults={faults}: {result.reason}"
    )
    roots = {s.chain_root for s in result.snapshots}
    assert len(roots) == 1, f"seed={seed}: state roots diverged {roots}"
    assert len({s.head_hash for s in result.snapshots}) == 1
    assert len({s.pool_hashes for s in result.snapshots}) == 1
    assert not any(s.diverged for s in result.snapshots)


@settings(
    max_examples=_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    faults=fault_profiles,
)
def test_one_monotonic_trace_per_tx_under_faults(seed, faults):
    config, result, state = _run(seed, faults)
    assert result.converged, result.reason
    txs = build_node_txs(
        PROFILES_BY_NAME[config.chain],
        blocks=config.workload_blocks,
        seed=config.seed,
        scale=config.scale,
    )
    traces = state.lifecycle.traces()
    assert {t.trace_id for t in traces} == {tx.tx_hash for tx in txs}
    assert len(traces) == len(txs)
    for trace in traces:
        assert trace.is_monotonic(), (
            f"seed={seed}: non-monotonic trace {trace.trace_id}"
        )
        assert trace.events[0].stage == "admitted"
        if trace.closed:
            assert trace.outcome == "committed"
