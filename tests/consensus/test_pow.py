"""Tests for the PoW simulator."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.consensus.pow import Miner, PoWSimulator, make_pool_set


def _simulator(target=600.0, window=50, growth=0.0, seed=1, shares=None):
    shares = shares or [("a", 0.5), ("b", 0.5)]
    return PoWSimulator(
        miners=make_pool_set(shares),
        target_interval=target,
        retarget_window=window,
        hashrate_growth=growth,
        rng=random.Random(seed),
    )


class TestValidation:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PoWSimulator(
                miners=make_pool_set([("a", 0.2), ("b", 0.2)]),
                target_interval=600.0,
            )

    def test_miner_share_bounds(self):
        with pytest.raises(ValueError):
            Miner(name="x", address="0x1", hashrate_share=0.0)

    def test_needs_positive_target(self):
        with pytest.raises(ValueError):
            _simulator(target=0.0)


class TestTiming:
    def test_timestamps_strictly_increase(self):
        sim = _simulator()
        slots = sim.mine_chain_timing(200)
        times = [slot.timestamp for slot in slots]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_interval_tracks_target(self):
        sim = _simulator(target=600.0, window=25, seed=3)
        slots = sim.mine_chain_timing(2000)
        intervals = [slot.interval for slot in slots[500:]]
        mean = statistics.mean(intervals)
        assert 400 < mean < 900  # exponential jitter, retarget-corrected

    def test_difficulty_rises_with_hashrate_growth(self):
        sim = _simulator(growth=0.01, window=20)
        slots = sim.mine_chain_timing(400)
        assert slots[-1].difficulty > slots[0].difficulty * 2

    def test_heights_are_consecutive(self):
        sim = _simulator()
        slots = sim.mine_chain_timing(10)
        assert [slot.height for slot in slots] == list(range(10))

    def test_deterministic_under_seed(self):
        a = _simulator(seed=9).mine_chain_timing(50)
        b = _simulator(seed=9).mine_chain_timing(50)
        assert [s.timestamp for s in a] == [s.timestamp for s in b]
        assert [s.miner.name for s in a] == [s.miner.name for s in b]


class TestMinerSelection:
    def test_shares_respected_statistically(self):
        sim = _simulator(shares=[("big", 0.8), ("small", 0.2)], seed=5)
        slots = sim.mine_chain_timing(2000)
        big_wins = sum(1 for slot in slots if slot.miner.name == "big")
        assert 0.74 < big_wins / 2000 < 0.86

    def test_pool_addresses_deterministic(self):
        pools_a = make_pool_set([("x", 1.0)])
        pools_b = make_pool_set([("x", 1.0)])
        assert pools_a[0].address == pools_b[0].address
