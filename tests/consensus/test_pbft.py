"""Tests for the PBFT committee model."""

from __future__ import annotations

import random

import pytest

from repro.consensus.pbft import PBFTCommittee, consensus_vs_execution_share


def _committee(size=7, faulty=0, seed=1):
    return PBFTCommittee(
        size=size, faulty=faulty, rng=random.Random(seed)
    )


class TestQuorums:
    def test_quorum_formula(self):
        assert _committee(size=4).quorum == 3    # f=1 -> 2f+1
        assert _committee(size=7).quorum == 5    # f=2
        assert _committee(size=10).quorum == 7   # f=3

    def test_tolerates(self):
        assert _committee(size=4).tolerates == 1
        assert _committee(size=100).tolerates == 33

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            _committee(size=3)

    def test_faulty_bounds(self):
        with pytest.raises(ValueError):
            PBFTCommittee(size=4, faulty=4)


class TestRounds:
    def test_fault_free_round_commits(self):
        result = _committee().run_round()
        assert result.committed
        assert result.view_changes == 0
        assert result.latency > 0

    def test_round_with_tolerable_faults_commits(self):
        result = _committee(size=7, faulty=2).run_round()
        assert result.committed

    def test_faulty_primary_forces_view_changes(self):
        result = _committee(size=7, faulty=2, seed=3).run_round()
        assert result.view_changes == 2

    def test_too_many_faults_blocks_quorum(self):
        result = _committee(size=7, faulty=3).run_round()
        assert not result.committed

    def test_message_complexity_is_quadratic(self):
        small = _committee(size=4).expected_messages_per_round()
        large = _committee(size=40).expected_messages_per_round()
        # n(n-1) scaling: 100x nodes => ~100x^2 messages.
        assert large > small * 50

    def test_expected_messages_formula(self):
        committee = _committee(size=4)
        assert committee.expected_messages_per_round() == 3 + 2 * 4 * 3


class TestExecutionShare:
    def test_small_committee_is_execution_dominated(self):
        """Paper §II-C: at 7 nodes, execution (250ms) >> consensus (20ms)."""
        share = consensus_vs_execution_share(
            committee_size=7, execution_time=0.25
        )
        assert share > 0.5

    def test_share_shrinks_with_committee_size(self):
        small = consensus_vs_execution_share(
            committee_size=7,
            execution_time=0.25,
            rng=random.Random(0),
        )
        big = consensus_vs_execution_share(
            committee_size=100,
            execution_time=0.25,
            rng=random.Random(0),
        )
        assert big < small
