"""Tests for the mempool: admission, RBF, eviction, packing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mempool.pool import AdmissionError, Mempool, MempoolError, PoolEntry


def _entry(name, fee=100, weight=10, replacement_key=""):
    return PoolEntry(
        tx_hash=name, fee=fee, weight=weight,
        replacement_key=replacement_key,
    )


class TestPoolEntry:
    def test_fee_rate(self):
        assert _entry("a", fee=50, weight=10).fee_rate == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _entry("", fee=1)
        with pytest.raises(ValueError):
            _entry("a", fee=-1)
        with pytest.raises(ValueError):
            _entry("a", weight=0)


class TestAdmission:
    def test_submit_and_contains(self):
        pool = Mempool(min_fee_rate=1.0)
        pool.submit(_entry("a"))
        assert "a" in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self):
        pool = Mempool()
        pool.submit(_entry("a"))
        with pytest.raises(AdmissionError):
            pool.submit(_entry("a"))

    def test_fee_floor(self):
        pool = Mempool(min_fee_rate=5.0)
        with pytest.raises(AdmissionError):
            pool.submit(_entry("cheap", fee=10, weight=10))  # rate 1.0
        pool.submit(_entry("rich", fee=100, weight=10))      # rate 10.0

    def test_replace_by_fee(self):
        pool = Mempool(replacement_factor=1.5)
        pool.submit(_entry("old", fee=100, replacement_key="alice:0"))
        with pytest.raises(AdmissionError):
            pool.submit(
                _entry("lowball", fee=120, replacement_key="alice:0")
            )
        pool.submit(_entry("bump", fee=200, replacement_key="alice:0"))
        assert "old" not in pool
        assert "bump" in pool
        assert len(pool) == 1

    def test_different_replacement_keys_coexist(self):
        pool = Mempool()
        pool.submit(_entry("a", replacement_key="alice:0"))
        pool.submit(_entry("b", replacement_key="alice:1"))
        assert len(pool) == 2


class TestEviction:
    def test_cheapest_evicted_first(self):
        pool = Mempool(max_weight=30, min_fee_rate=0.1)
        pool.submit(_entry("cheap", fee=10, weight=10))    # rate 1
        pool.submit(_entry("mid", fee=50, weight=10))      # rate 5
        pool.submit(_entry("rich", fee=100, weight=10))    # rate 10
        pool.submit(_entry("richer", fee=200, weight=10))  # rate 20
        assert pool.total_weight <= 30
        assert "cheap" not in pool
        assert "richer" in pool

    def test_capacity_invariant(self):
        pool = Mempool(max_weight=100, min_fee_rate=0.0)
        for index in range(50):
            pool.submit(_entry(f"t{index}", fee=index + 1, weight=7))
        assert pool.total_weight <= 100


class TestPacking:
    def test_greedy_by_fee_rate(self):
        pool = Mempool(min_fee_rate=0.1)
        pool.submit(_entry("low", fee=10, weight=10))
        pool.submit(_entry("high", fee=100, weight=10))
        pool.submit(_entry("mid", fee=50, weight=10))
        block = pool.pack_block(weight_budget=20)
        assert [entry.tx_hash for entry in block] == ["high", "mid"]
        assert "low" in pool  # left behind
        assert "high" not in pool  # removed on inclusion

    def test_skips_entries_that_do_not_fit(self):
        pool = Mempool(min_fee_rate=0.1)
        pool.submit(_entry("bulky", fee=1000, weight=50))
        pool.submit(_entry("small", fee=10, weight=10))
        block = pool.pack_block(weight_budget=20)
        assert [entry.tx_hash for entry in block] == ["small"]

    def test_budget_validation(self):
        with pytest.raises(MempoolError):
            Mempool().pack_block(0)

    def test_packing_feeds_fee_estimator(self):
        pool = Mempool(min_fee_rate=0.1)
        for index in range(10):
            pool.submit(_entry(f"t{index}", fee=(index + 1) * 10, weight=10))
        pool.pack_block(weight_budget=100)
        estimate = pool.estimate_fee_rate(0.5)
        assert 1.0 <= estimate <= 10.0

    def test_estimator_defaults_to_floor(self):
        pool = Mempool(min_fee_rate=2.5)
        assert pool.estimate_fee_rate() == 2.5

    def test_estimator_percentile_validation(self):
        with pytest.raises(ValueError):
            Mempool().estimate_fee_rate(1.5)

    def test_entries_by_fee_rate_ordering(self):
        pool = Mempool(min_fee_rate=0.1)
        pool.submit(_entry("a", fee=10))
        pool.submit(_entry("b", fee=99))
        rates = [e.fee_rate for e in pool.entries_by_fee_rate()]
        assert rates == sorted(rates, reverse=True)


@settings(max_examples=100)
@given(
    fees=st.lists(
        st.integers(min_value=1, max_value=10_000), min_size=1, max_size=40
    ),
    budget=st.integers(min_value=10, max_value=200),
)
def test_packing_never_exceeds_budget_and_maximises_rate(fees, budget):
    """Property: packed weight <= budget; included min rate >= excluded
    max rate among same-size entries."""
    pool = Mempool(min_fee_rate=0.0, max_weight=10**9)
    for index, fee in enumerate(fees):
        pool.submit(_entry(f"t{index}", fee=fee, weight=10))
    block = pool.pack_block(weight_budget=budget)
    assert sum(entry.weight for entry in block) <= budget
    if block and len(pool):
        included_min = min(entry.fee_rate for entry in block)
        excluded_max = max(
            entry.fee_rate for entry in pool.entries_by_fee_rate()
        )
        assert included_min >= excluded_max - 1e-9


class TestDependencyAwarePacking:
    def test_child_waits_for_parent(self):
        pool = Mempool(min_fee_rate=0.1)
        pool.submit(_entry("parent", fee=10, weight=10))   # cheap parent
        pool.submit(_entry("child", fee=100, weight=10))   # rich child
        pool.submit(_entry("other", fee=50, weight=10))
        block = pool.pack_block_with_dependencies(
            30, parents={"child": {"parent"}}
        )
        order = [entry.tx_hash for entry in block]
        assert order.index("parent") < order.index("child")
        assert set(order) == {"parent", "child", "other"}

    def test_child_blocked_when_parent_does_not_fit(self):
        pool = Mempool(min_fee_rate=0.1)
        pool.submit(_entry("parent", fee=10, weight=50))
        pool.submit(_entry("child", fee=100, weight=10))
        block = pool.pack_block_with_dependencies(
            20, parents={"child": {"parent"}}
        )
        assert block == []

    def test_confirmed_parent_not_required(self):
        pool = Mempool(min_fee_rate=0.1)
        pool.submit(_entry("child", fee=100, weight=10))
        block = pool.pack_block_with_dependencies(
            20, parents={"child": {"already-on-chain"}}
        )
        assert [entry.tx_hash for entry in block] == ["child"]

    def test_chain_of_dependencies_packs_in_order(self):
        pool = Mempool(min_fee_rate=0.1)
        for name, fee in (("a", 10), ("b", 20), ("c", 90)):
            pool.submit(_entry(name, fee=fee, weight=10))
        block = pool.pack_block_with_dependencies(
            30, parents={"b": {"a"}, "c": {"b"}}
        )
        assert [entry.tx_hash for entry in block] == ["a", "b", "c"]

    def test_dependency_cycle_never_selected(self):
        pool = Mempool(min_fee_rate=0.1)
        pool.submit(_entry("x", fee=10, weight=10))
        pool.submit(_entry("y", fee=10, weight=10))
        block = pool.pack_block_with_dependencies(
            100, parents={"x": {"y"}, "y": {"x"}}
        )
        assert block == []
        assert "x" in pool and "y" in pool

    def test_budget_validation(self):
        with pytest.raises(MempoolError):
            Mempool().pack_block_with_dependencies(0, parents={})


class TestLifecycleInstrumentation:
    def test_submit_opens_trace_and_eviction_closes_dropped(self):
        from repro import obs

        with obs.instrumented() as state:
            pool = Mempool(max_weight=20, min_fee_rate=0.1)
            pool.submit(_entry("cheap", fee=10, weight=10))
            pool.submit(_entry("rich", fee=100, weight=10))
            # Third entry overflows capacity; the lowest fee rate goes.
            pool.submit(_entry("richer", fee=200, weight=10))
            assert "cheap" not in pool
            cheap = state.lifecycle.trace("cheap")
            assert cheap.outcome == "dropped"
            assert cheap.events[-1].attrs["reason"] == "evicted"
            assert state.lifecycle.trace("rich").outcome is None
            counters = state.registry.snapshot()["counters"]
            assert counters["mempool.evicted"] == 1.0
            assert counters["lifecycle.closed{outcome=dropped}"] == 1.0
            spans = [
                span for span in state.tracer.spans()
                if span.name == "mempool.evict"
            ]
            assert spans and spans[-1].attrs["evicted"] == 1

    def test_replaced_transaction_closes_dropped(self):
        from repro import obs

        with obs.instrumented() as state:
            pool = Mempool(replacement_factor=1.5)
            pool.submit(
                _entry("old", fee=100, replacement_key="alice:0")
            )
            pool.submit(
                _entry("bump", fee=200, replacement_key="alice:0")
            )
            old = state.lifecycle.trace("old")
            assert old.outcome == "dropped"
            assert old.events[-1].attrs["reason"] == "replaced"
            assert state.lifecycle.trace("bump").outcome is None

    def test_packing_records_included_stage(self):
        from repro import obs

        with obs.instrumented() as state:
            pool = Mempool(min_fee_rate=0.1)
            pool.submit(_entry("a", fee=100, weight=10))
            pool.pack_block(100)
            trace = state.lifecycle.trace("a")
            assert trace.stages == ("admitted", "included")

    def test_untraced_pool_still_works_when_disabled(self):
        from repro import obs

        obs.uninstall()
        pool = Mempool(max_weight=20, min_fee_rate=0.1)
        pool.submit(_entry("a", fee=10, weight=10))
        pool.submit(_entry("b", fee=100, weight=20))
        assert "a" not in pool  # evicted, silently
        assert pool.pack_block(100)
