"""CLI contract for ``repro.cli staticcheck``: exit-code matrix, the
lattice switch, and the incremental-cache statistics line."""

from __future__ import annotations

import re

import pytest

from repro.cli import main


def _run(capsys, *argv):
    code = main(["staticcheck", *argv])
    captured = capsys.readouterr()
    return code, captured.out


class TestExitCodes:
    def test_clean_registry_exits_0(self, capsys):
        code, out = _run(capsys, "--chain", "ethereum")
        assert code == 0
        assert "0 error(s), 0 warning(s)" in out

    def test_defects_exit_1(self, capsys):
        code, out = _run(capsys, "--chain", "ethereum", "--with-defects")
        assert code == 1
        assert "stack underflow" in out

    def test_warnings_exit_1_only_under_strict(self, capsys):
        code, _ = _run(capsys, "--chain", "ethereum", "--dynamic", "2")
        assert code == 0
        code, out = _run(
            capsys, "--chain", "ethereum", "--dynamic", "2", "--strict"
        )
        assert code == 1
        assert "widened to ⊤" in out

    def test_utxo_chain_is_usage_error(self, capsys):
        assert main(["staticcheck", "--chain", "bitcoin"]) == 2
        assert "account chain" in capsys.readouterr().err


class TestLatticeSwitch:
    def test_valueset_is_more_precise_than_const(self, capsys):
        """The routed archetypes widen under const, resolve under the
        (default) value-set lattice — strictly fewer ⊤ warnings."""
        _, const_out = _run(
            capsys, "--chain", "ethereum", "--dynamic", "8",
            "--lattice", "const",
        )
        _, vs_out = _run(
            capsys, "--chain", "ethereum", "--dynamic", "8",
            "--lattice", "valueset",
        )
        const_tops = const_out.count("widened to ⊤")
        vs_tops = vs_out.count("widened to ⊤")
        assert 0 < vs_tops < const_tops

    def test_unknown_lattice_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "staticcheck", "--chain", "ethereum",
                "--lattice", "octagon",
            ])


class TestLintTable:
    def test_status_lines_carry_analysis_cost_note(self, capsys):
        code, out = _run(capsys, "--chain", "ethereum")
        assert code == 0
        status = re.compile(
            r"instructions\): clean \[\d+\.\d+ ms, "
            r"\d+ resolved / \d+ widened site\(s\)\]"
        )
        assert status.search(out)
        assert re.search(r"contract\(s\) checked: .* in \d+\.\d+ ms", out)


class TestIncremental:
    def test_incremental_reports_cache_hits(self, capsys):
        code, out = _run(
            capsys, "--chain", "ethereum", "--incremental"
        )
        assert code == 0
        match = re.search(
            r"^incremental: summary_hits=(\d+) summary_misses=(\d+) "
            r"closure_hits=(\d+) closure_misses=(\d+) invalidated=(\d+)$",
            out, re.MULTILINE,
        )
        assert match, out.splitlines()[-1]
        closure_hits = int(match.group(3))
        invalidated = int(match.group(5))
        # Growth-only change: the second pass reuses every pre-existing
        # closure and invalidates none.
        assert closure_hits > 0
        assert invalidated == 0
