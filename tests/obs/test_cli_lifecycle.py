"""CLI contract for ``repro.cli lifecycle``: the per-stage breakdown
renders for every chain in the catalogue, usage errors exit 2, and
``--out`` writes a Chrome trace whose lifecycle process joins the
executor timeline with flow events."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.exporters import LIFECYCLE_PID
from repro.workload.profiles import PROFILES_BY_NAME


def _run(capsys, *extra):
    code = main([
        "lifecycle", "--blocks", "2", "--seed", "0", "--cores", "2",
        *extra,
    ])
    return code, capsys.readouterr().out


class TestLifecycleCommand:
    @pytest.mark.parametrize("chain", sorted(PROFILES_BY_NAME))
    def test_breakdown_renders_for_every_chain(self, capsys, chain):
        code, out = _run(capsys, "--chain", chain)
        assert code == 0
        assert "admitted" in out and "committed" in out
        assert "per-stage latency" in out
        assert "share of total traced latency" in out
        assert "slowest 3 trace(s):" in out
        assert "executor lanes (dag)" in out
        # The summary line accounts for every transaction.
        summary = out.splitlines()[0]
        admitted = int(summary.split(" admitted")[0].rsplit(" ", 1)[1])
        committed = int(summary.split(" committed")[0].rsplit(" ", 1)[1])
        dropped = int(summary.split(" dropped")[0].rsplit(" ", 1)[1])
        assert admitted == committed + dropped
        assert admitted > 0

    def test_task_executor_reports_aborts(self, capsys):
        code, out = _run(
            capsys, "--chain", "ethereum", "--executor", "occ",
        )
        assert code == 0
        assert "executor lanes (occ)" in out

    def test_out_writes_joined_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "lifecycle.json"
        code, out = _run(
            capsys, "--chain", "ethereum", "--out", str(out_path),
        )
        assert code == 0
        assert f"trace events to {out_path}" in out
        document = json.loads(out_path.read_text())
        events = document["traceEvents"]
        lifecycle = [e for e in events if e.get("pid") == LIFECYCLE_PID]
        assert lifecycle, "no lifecycle process in the trace"
        # Stage swimlanes are named threads; traces hop via flows.
        names = {
            e["args"]["name"] for e in lifecycle
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"admitted", "included", "committed"} <= names
        flow_phases = {e["ph"] for e in lifecycle}
        assert {"s", "f"} <= flow_phases
        # Executor slices from the same run share the file.
        assert any(
            e["ph"] == "X" and e.get("pid") != LIFECYCLE_PID
            for e in events
        )

    def test_dropped_traces_close_in_report(self, capsys):
        code, out = _run(
            capsys, "--chain", "ethereum", "--mempool-weight", "50",
        )
        assert code == 0
        dropped = int(
            out.splitlines()[0].split(" dropped")[0].rsplit(" ", 1)[1]
        )
        assert dropped > 0
        assert "dropped" in out


class TestUsageErrors:
    @pytest.mark.parametrize("argv", [
        ["lifecycle", "--chain", "fantom"],
        ["lifecycle", "--chain", "ethereum", "--blocks", "0"],
        ["lifecycle", "--chain", "ethereum", "--cores", "0"],
        ["lifecycle", "--chain", "ethereum", "--nodes", "1"],
        ["lifecycle", "--chain", "ethereum", "--top", "0"],
        ["lifecycle", "--chain", "ethereum", "--mempool-weight", "0"],
    ])
    def test_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_executor_choice_exits_2(self, capsys):
        # argparse rejects the choice itself and exits directly.
        with pytest.raises(SystemExit) as excinfo:
            main(["lifecycle", "--chain", "ethereum",
                  "--executor", "warp"])
        assert excinfo.value.code == 2


class TestSamplingFlags:
    def test_sampled_run_notes_rate_and_stays_exact(self, capsys):
        code, out = _run(
            capsys, "--chain", "ethereum", "--rate", "1/2",
        )
        assert code == 0
        assert "head-based sampling at 1/2" in out
        assert "stage counters remain exact" in out

    def test_zero_sampled_traces_degrades_gracefully(self, capsys):
        # A tiny run at 1/1000000 keeps no traces: the drill-down must
        # explain itself and exit 0 instead of crashing on empty data.
        code, out = _run(
            capsys, "--chain", "ethereum", "--rate", "1/1000000",
        )
        assert code == 0
        assert "no traces sampled at rate 1/1000000" in out

    def test_sketch_policy_renders_breakdown(self, capsys):
        code, out = _run(
            capsys, "--chain", "ethereum", "--policy", "sketch",
        )
        assert code == 0
        assert "per-stage latency" in out

    @pytest.mark.parametrize("argv", [
        ["lifecycle", "--chain", "ethereum", "--rate", "0/100"],
        ["lifecycle", "--chain", "ethereum", "--rate", "banana"],
        ["lifecycle", "--chain", "ethereum", "--rate", "5/2"],
    ])
    def test_bad_rate_exits_2(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err
