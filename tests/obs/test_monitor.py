"""Streaming monitor: fixed-memory ring-buffer aggregation, SLO rule
evaluation (hard vs advisory), rendering/snapshots, and the
``on_block`` integration with the full pipeline."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.lifecycle import LifecycleTracer
from repro.obs.lifecycle_run import run_lifecycle
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import (
    BlockSample,
    SLORule,
    StreamingMonitor,
    default_rules,
    monitor_snapshot,
    render_monitor,
)
from repro.workload.profiles import ETHEREUM, ZILLIQA


def _sample(height, *, txs=10, committed=10, aborted=0, retried=0,
            wall=0.05, sim=12.0, depth=3, util=0.5, stages=None):
    return BlockSample(
        height=height,
        txs=txs,
        committed=committed,
        aborted=aborted,
        retried=retried,
        wall_clock_s=wall,
        sim_seconds=sim,
        mempool_depth=depth,
        lane_utilization=util,
        stage_latencies=stages or {},
    )


class TestRingBuffer:
    def test_window_evicts_oldest(self):
        monitor = StreamingMonitor(window=2)
        monitor.observe_block(_sample(1, txs=100))
        monitor.observe_block(_sample(2, txs=10))
        aggregate = monitor.observe_block(_sample(3, txs=20))
        assert aggregate.window == 2
        assert aggregate.blocks_seen == 3
        assert aggregate.txs == 30  # block 1 evicted
        assert monitor.window_size == 2

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="at least 1"):
            StreamingMonitor(window=0)

    def test_empty_monitor_aggregate(self):
        aggregate = StreamingMonitor(window=4).aggregate()
        assert aggregate.window == 0
        assert aggregate.abort_rate == 0.0
        assert aggregate.throughput == 0.0
        assert aggregate.stage_percentiles == {}

    def test_aggregate_math(self):
        monitor = StreamingMonitor(window=4)
        monitor.observe_block(_sample(
            1, committed=8, aborted=2, retried=2, depth=5, util=0.25,
            stages={"committed": (1.0, 2.0, 3.0)},
        ))
        aggregate = monitor.observe_block(_sample(
            2, committed=6, aborted=4, retried=3, depth=9, util=0.75,
            stages={"committed": (4.0,)},
        ))
        assert aggregate.abort_rate == pytest.approx(6 / 20)
        assert aggregate.retried == 5
        assert aggregate.mempool_depth == 9  # latest reading wins
        assert aggregate.mean_lane_utilization == pytest.approx(0.5)
        assert aggregate.throughput == pytest.approx(14 / 24.0)
        stats = aggregate.stage_percentiles["committed"]
        assert stats["count"] == 4.0
        assert stats["p50"] == pytest.approx(2.5)

    def test_metric_resolution(self):
        monitor = StreamingMonitor(window=2)
        aggregate = monitor.observe_block(_sample(
            1, stages={"committed": (1.0, 2.0)},
        ))
        assert aggregate.value("abort_rate") == 0.0
        assert aggregate.value("stage.committed.p50") == \
            pytest.approx(1.5)
        assert aggregate.value("stage.scheduled.p99") == 0.0
        with pytest.raises(ValueError, match="unknown monitor metric"):
            aggregate.value("no_such_metric")
        with pytest.raises(ValueError, match="unknown monitor metric"):
            aggregate.value("stage_percentiles")  # not a scalar


class TestSLORules:
    def test_operator_validation(self):
        with pytest.raises(ValueError, match="unsupported SLO"):
            SLORule(name="r", metric="abort_rate", op="<",
                    threshold=0.5)

    def test_hard_breach_vs_advisory(self):
        monitor = StreamingMonitor(window=4, rules=[
            SLORule(name="aborts", metric="abort_rate", op="<=",
                    threshold=0.25),
            SLORule(name="wall", metric="wall_p95", op="<=",
                    threshold=1e-9, advisory=True),
        ])
        monitor.observe_block(_sample(1, committed=1, aborted=9))
        results = monitor.evaluate()
        assert [r.severity for r in results] == ["breach", "advisory"]
        breaches = monitor.hard_breaches(results)
        assert [b.rule.name for b in breaches] == ["aborts"]

    def test_passing_rules(self):
        monitor = StreamingMonitor(window=4, rules=[
            SLORule(name="aborts", metric="abort_rate", op="<=",
                    threshold=0.5),
            SLORule(name="work", metric="txs", op=">=", threshold=5),
        ])
        monitor.observe_block(_sample(1))
        assert all(r.ok for r in monitor.evaluate())
        assert monitor.hard_breaches() == []

    def test_default_rules_shape(self):
        rules = default_rules(max_abort_rate=0.2, wall_p95_budget=1.0)
        assert [(r.metric, r.advisory) for r in rules] == [
            ("abort_rate", False),
            ("wall_p95", True),  # wall-clock gate never fails a run
        ]
        assert default_rules() == []


class TestRegistryAndCallbacks:
    def test_observe_block_exports_gauges(self):
        registry = MetricsRegistry()
        monitor = StreamingMonitor(window=2, registry=registry)
        monitor.observe_block(_sample(1, committed=3, aborted=1))
        assert registry.gauge("monitor.abort_rate").value == \
            pytest.approx(0.25)
        assert registry.gauge("monitor.window_blocks").value == 1
        assert registry.counter("monitor.blocks").value == 1

    def test_on_sample_callback_sees_each_aggregate(self):
        seen = []
        monitor = StreamingMonitor(window=2, on_sample=seen.append)
        monitor.observe_block(_sample(1))
        monitor.observe_block(_sample(2))
        assert [a.blocks_seen for a in seen] == [1, 2]


class TestRendering:
    def test_render_includes_rules_and_stage_table(self):
        monitor = StreamingMonitor(window=2, rules=default_rules(
            max_abort_rate=0.01,
        ))
        aggregate = monitor.observe_block(_sample(
            1, committed=5, aborted=5,
            stages={"committed": (1.0, 2.0)},
        ))
        text = render_monitor(aggregate, monitor.evaluate(aggregate))
        assert "abort-rate" in text
        assert "BREACH" in text
        assert "sampled stage latency" in text

    def test_render_without_closed_traces_explains_itself(self):
        monitor = StreamingMonitor(window=2)
        aggregate = monitor.observe_block(_sample(1))
        text = render_monitor(aggregate)
        assert "no sampled traces closed" in text

    def test_snapshot_document(self):
        monitor = StreamingMonitor(window=2, rules=default_rules(
            max_abort_rate=0.01,
        ))
        aggregate = monitor.observe_block(_sample(
            1, committed=5, aborted=5,
        ))
        results = monitor.evaluate(aggregate)
        document = monitor_snapshot(aggregate, results)
        assert document["aggregate"]["abort_rate"] == 0.5
        assert document["hard_breaches"] == ["abort-rate"]
        assert document["rules"][0]["ok"] is False


class TestPipelineIntegration:
    def test_run_lifecycle_streams_block_samples(self):
        registry = MetricsRegistry()
        monitor = StreamingMonitor(window=4, registry=registry)
        with obs.instrumented(
            registry=registry,
            lifecycle=LifecycleTracer(registry=registry),
        ):
            result = run_lifecycle(
                ETHEREUM, blocks=4, seed=2020, cores=2,
                on_block=monitor.observe_block,
            )
        assert monitor.blocks_seen > 0
        aggregate = monitor.aggregate()
        assert aggregate.txs > 0
        assert aggregate.sim_seconds > 0
        # Full-rate tracing: every committed trace feeds the window.
        assert aggregate.stage_percentiles["committed"]["count"] > 0
        assert registry.counter("monitor.blocks").value == \
            monitor.blocks_seen
        assert result.admitted > 0

    def test_sharded_profile_streams_joined_traces(self):
        monitor = StreamingMonitor(window=4)
        registry = MetricsRegistry()
        with obs.instrumented(
            registry=registry,
            lifecycle=LifecycleTracer(registry=registry),
        ):
            run_lifecycle(
                ZILLIQA, blocks=3, seed=2020, cores=2,
                on_block=monitor.observe_block,
            )
        assert monitor.blocks_seen > 0
        assert monitor.aggregate().txs > 0
