"""CLI contract for ``repro.cli timeline`` and ``repro.cli regress``:
Chrome-trace schema, bound invariants, and the gate's exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

BASELINE = (
    Path(__file__).resolve().parent / "baseline" / "regress_baseline.json"
)

# Chrome trace-event fields by phase type (the subset we emit).
COMMON_FIELDS = {"name", "ph", "pid", "tid"}


def _run_timeline(tmp_path, *extra):
    out = tmp_path / "trace.json"
    code = main([
        "timeline", "--chain", "ethereum", "--executor", "speculative",
        "--jobs", "4", "--blocks", "4", "--seed", "0",
        "--out", str(out), *extra,
    ])
    return code, out


class TestTimelineCommand:
    def test_acceptance_invocation_emits_valid_chrome_trace(
        self, tmp_path, capsys
    ):
        code, out = _run_timeline(tmp_path)
        assert code == 0
        document = json.loads(out.read_text())
        assert set(document) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events, "trace is empty"
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "i", "M"}
        for event in events:
            assert COMMON_FIELDS <= set(event)
            if event["ph"] == "X":  # complete slice
                assert event["dur"] >= 0
                assert event["ts"] >= 0
                assert event["args"]["outcome"] in ("commit", "abort")
            elif event["ph"] == "i":  # instant
                assert event["s"] == "t"
            else:  # metadata
                assert event["name"] in ("process_name", "thread_name")
        # Slices exist for the executor and land on worker lanes
        # (tid >= 1; tid 0 is the queue).
        slices = [e for e in events if e["ph"] == "X"]
        assert all(e["tid"] >= 1 for e in slices)

    def test_per_block_speedup_within_eq2(self, tmp_path, capsys):
        code, _out = _run_timeline(tmp_path)
        assert code == 0
        # With the trace in a file the per-block table goes to stdout;
        # every row of the strict speculative executor must be within
        # the Eq. 2 bound (no flags).
        out = capsys.readouterr().out
        assert "VIOLATION" not in out
        rows = [
            line for line in out.splitlines()
            if line and line[0].isdigit()
        ]
        assert len(rows) >= 3
        for row in rows:
            cells = [c.strip() for c in row.split("|")]
            measured, eq2 = float(cells[2]), float(cells[4])
            assert measured <= eq2 + 1e-9

    def test_stdout_json_mode(self, capsys):
        code = main([
            "timeline", "--chain", "ethereum", "--blocks", "2",
        ])
        assert code == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["traceEvents"]

    @pytest.mark.parametrize(
        "argv",
        [
            ["timeline", "--chain", "notachain"],
            ["timeline", "--chain", "ethereum", "--jobs", "0"],
            ["timeline", "--chain", "ethereum", "--blocks", "0"],
        ],
        ids=["bad-chain", "bad-jobs", "bad-blocks"],
    )
    def test_usage_errors_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err


class TestRegressCommand:
    def test_checked_in_baseline_passes(self, capsys):
        code = main(["regress", "--baseline", str(BASELINE)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        baseline = json.loads(BASELINE.read_text())
        executor = next(iter(baseline["timeline"]))
        baseline["timeline"][executor]["events"] += 100
        perturbed = tmp_path / "perturbed.json"
        perturbed.write_text(json.dumps(baseline))
        code = main(["regress", "--baseline", str(perturbed)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL" in out

    def test_tolerance_band_in_baseline_absorbs_drift(self, tmp_path):
        baseline = json.loads(BASELINE.read_text())
        executor = next(iter(baseline["timeline"]))
        baseline["timeline"][executor]["events"] += 1
        baseline["tolerances"] = {"timeline.*.events": {"abs": 2}}
        banded = tmp_path / "banded.json"
        banded.write_text(json.dumps(baseline))
        assert main(["regress", "--baseline", str(banded)]) == 0

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        code = main([
            "regress", "--baseline", str(tmp_path / "absent.json"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_update_writes_baseline_and_snapshot_out(self, tmp_path):
        target = tmp_path / "new_baseline.json"
        code = main([
            "regress", "--baseline", str(target), "--update",
            "--chain", "ethereum", "--blocks", "2", "--cores", "2",
            "--seed", "5",
        ])
        assert code == 0
        written = json.loads(target.read_text())
        assert written["workload"]["blocks"] == 2
        # The freshly written baseline immediately passes the gate.
        snap_out = tmp_path / "fresh.json"
        code = main([
            "regress", "--baseline", str(target),
            "--snapshot-out", str(snap_out),
        ])
        assert code == 0
        assert json.loads(snap_out.read_text())["workload"]["blocks"] == 2


class TestDegenerateInputs:
    def test_empty_replay_exits_zero_with_note(self, capsys):
        # A scale so small no block carries an executable transaction:
        # the table/summary path must explain itself, not traceback.
        code = main([
            "timeline", "--chain", "ethereum", "--blocks", "1",
            "--seed", "0", "--scale", "0.001",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "empty timeline" in err
