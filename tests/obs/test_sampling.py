"""Head-based trace sampling: the decision is a pure function of the
trace id (reproducible across threads, forked and spawned processes,
and re-runs), cross-shard sub-traces inherit the parent's decision,
and :class:`SampledLifecycleTracer` keeps stage counters exact while
tracing only the sampled subset."""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.lifecycle import (
    ADMITTED,
    COMMITTED,
    CONSENSUS,
    shard_subtrace_id,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import (
    FULL_RATE,
    UNSAMPLED_CONTEXT,
    SampledLifecycleTracer,
    SampleRate,
    parse_rate,
    sample_decision,
    sample_decisions,
)

IDS = [f"tx{i:06x}" for i in range(4000)]
RATE = SampleRate(1, 100)


def _chunks(items, size):
    return [items[i:i + size] for i in range(0, len(items), size)]


class TestSampleRate:
    def test_validation(self):
        with pytest.raises(ValueError):
            SampleRate(0, 100)
        with pytest.raises(ValueError):
            SampleRate(3, 2)
        with pytest.raises(ValueError):
            SampleRate(1, 0)

    def test_full_rate(self):
        assert FULL_RATE.is_full
        assert not RATE.is_full
        assert RATE.fraction == pytest.approx(0.01)
        assert str(SampleRate(1, 100)) == "1/100"

    @pytest.mark.parametrize("text,keep,out_of", [
        ("1/100", 1, 100),
        ("3/7", 3, 7),
        (" 1 / 2 ", 1, 2),
    ])
    def test_parse_rate(self, text, keep, out_of):
        assert parse_rate(text) == SampleRate(keep, out_of)

    @pytest.mark.parametrize("text", [
        "", "abc", "1", "1/", "/2", "0/100", "5/2", "-1/10", "1/0",
    ])
    def test_parse_rate_rejects(self, text):
        with pytest.raises(ValueError):
            parse_rate(text)


class TestDecisionDeterminism:
    def test_pure_and_repeatable(self):
        first = [sample_decision(i, RATE) for i in IDS]
        second = [sample_decision(i, RATE) for i in IDS]
        assert first == second

    def test_full_rate_keeps_everything(self):
        assert all(sample_decision(i, FULL_RATE) for i in IDS)

    def test_keep_fraction_near_rate(self):
        kept = sum(sample_decision(i, RATE) for i in IDS)
        expected = len(IDS) / 100
        assert 0.5 * expected <= kept <= 2.0 * expected

    def test_shard_subtraces_inherit_parent_decision(self):
        for tx in IDS[:512]:
            parent = sample_decision(tx, RATE)
            for shard in (0, 3, 17):
                sub = shard_subtrace_id(tx, shard)
                assert sample_decision(sub, RATE) == parent

    def test_threads_agree_with_serial(self):
        serial = [sample_decision(i, RATE) for i in IDS]
        with ThreadPoolExecutor(max_workers=4) as pool:
            threaded = list(pool.map(
                lambda chunk: sample_decisions(chunk, 1, 100),
                _chunks(IDS, 500),
            ))
        assert [d for chunk in threaded for d in chunk] == serial

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_worker_processes_agree_with_serial(self, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} start method unavailable")
        serial = [sample_decision(i, RATE) for i in IDS]
        context = multiprocessing.get_context(method)
        with context.Pool(2) as pool:
            remote = pool.starmap(
                sample_decisions,
                [(chunk, 1, 100) for chunk in _chunks(IDS, 1000)],
            )
        assert [d for chunk in remote for d in chunk] == serial


class TestSampledLifecycleTracer:
    def _tracer(self, rate=RATE):
        registry = MetricsRegistry()
        return SampledLifecycleTracer(rate, registry=registry), registry

    def test_unsampled_begin_returns_shared_sentinel(self):
        life, _ = self._tracer()
        dropped_ids = [i for i in IDS if not sample_decision(i, RATE)]
        context = life.begin(dropped_ids[0])
        assert context is UNSAMPLED_CONTEXT
        assert context.span_id == 0
        assert life.open_count == 0

    def test_sampled_transactions_get_full_traces(self):
        life, _ = self._tracer()
        kept_ids = [i for i in IDS if sample_decision(i, RATE)]
        tx = kept_ids[0]
        context = life.begin(tx, at=0.0)
        assert context.trace_id == tx and context.span_id > 0
        assert life.record(tx, CONSENSUS, at=1.0) is not None
        assert life.close(tx, at=2.0)
        trace = life.trace(tx)
        assert trace is not None and trace.closed
        assert trace.outcome == "committed"

    def test_unsampled_record_and_close_are_noops(self):
        life, _ = self._tracer()
        tx = next(i for i in IDS if not sample_decision(i, RATE))
        life.begin(tx)
        assert life.record(tx, CONSENSUS) is None
        assert life.trace(tx) is None
        assert life.closed_count == 0

    def test_record_rejects_unknown_stage(self):
        life, _ = self._tracer()
        with pytest.raises(ValueError, match="unknown lifecycle stage"):
            life.record("tx0", "teleported")

    def test_stage_counters_exact_over_all_transactions(self):
        life, registry = self._tracer()
        for tx in IDS[:1000]:
            life.begin(tx, at=0.0)
            life.record(tx, CONSENSUS, at=1.0)
            life.close(tx, at=2.0)
        life.flush_counts()
        kept = sum(sample_decision(i, RATE) for i in IDS[:1000])
        admitted = registry.counter(
            f"lifecycle.stage_count.{ADMITTED}"
        ).value
        consensus = registry.counter(
            "lifecycle.stage_count.consensus"
        ).value
        committed = registry.counter(
            f"lifecycle.stage_count.{COMMITTED}"
        ).value
        assert admitted == consensus == committed == 1000
        assert registry.counter("lifecycle.sampled.kept").value == kept
        assert registry.counter(
            "lifecycle.sampled.dropped"
        ).value == 1000 - kept
        # ...but only the sampled subset carries stitched traces.
        assert life.closed_count == kept

    def test_clock_and_reads_are_flush_points(self):
        life, registry = self._tracer()
        counter = registry.counter("lifecycle.stage_count.admitted")
        for tx in IDS[:10]:
            life.begin(tx)
        # Batched: nothing synced yet without an explicit flush point.
        assert counter.value == 0
        life.set_clock(5.0)
        assert counter.value == 10
        for tx in IDS[10:20]:
            life.begin(tx)
        life.closed_traces()
        assert counter.value == 20

    def test_full_rate_traces_everything(self):
        life, registry = self._tracer(rate=FULL_RATE)
        for tx in IDS[:50]:
            life.begin(tx, at=0.0)
            life.close(tx, at=1.0)
        life.flush_counts()
        assert life.closed_count == 50
        assert registry.counter("lifecycle.sampled.kept").value == 50
        assert registry.counter("lifecycle.sampled.dropped").value == 0

    def test_works_without_registry(self):
        life = SampledLifecycleTracer(RATE)
        for tx in IDS[:200]:
            life.begin(tx)
        life.flush_counts()  # must be a harmless no-op
        kept = sum(sample_decision(i, RATE) for i in IDS[:200])
        assert life.open_count == kept

    def test_decision_memo_stays_bounded(self, monkeypatch):
        monkeypatch.setattr(
            "repro.obs.sampling._DECISION_MEMO_CAP", 64
        )
        life, _ = self._tracer()
        for tx in IDS[:1000]:
            life.begin(tx)
        assert len(life._decisions) <= 64
        # Eviction can never flip an outcome: the decision is pure.
        for tx in IDS[:1000]:
            assert life.sampled(tx) == sample_decision(tx, RATE)

    def test_clear_resets_batches_and_memo(self):
        life, registry = self._tracer()
        for tx in IDS[:100]:
            life.begin(tx)
        life.clear()
        life.flush_counts()
        assert registry.counter(
            "lifecycle.stage_count.admitted"
        ).value == 0
        assert len(life._decisions) == 0
