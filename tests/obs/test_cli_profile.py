"""Tier-1-adjacent smoke test: ``repro.cli profile`` runs end-to-end
and emits a schema-valid JSONL trace (the CI smoke step in test form)."""

from __future__ import annotations

import json

from repro import obs
from repro.cli import main
from repro.obs.exporters import TRACE_SCHEMA_VERSION, read_trace_jsonl

REQUIRED_SPAN_FIELDS = {
    "type", "name", "span_id", "parent_id", "start_ns", "duration_ns",
    "attrs",
}


def _run_profile(tmp_path, chain="ethereum", blocks="5"):
    trace_path = tmp_path / "spans.jsonl"
    code = main([
        "profile", "--chain", chain, "--blocks", blocks,
        "--seed", "0", "--scale", "0.5",
        "--trace-out", str(trace_path),
    ])
    return code, trace_path


class TestProfileCommand:
    def test_end_to_end_jsonl_schema(self, tmp_path, capsys):
        code, trace_path = _run_profile(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "spans by name" in out
        assert "counters" in out

        lines = trace_path.read_text().splitlines()
        records = [json.loads(line) for line in lines]

        # Header first, metrics snapshot last, spans in between.
        assert records[0]["type"] == "header"
        assert records[0]["schema_version"] == TRACE_SCHEMA_VERSION
        assert records[-1]["type"] == "metrics"
        span_records = [r for r in records if r["type"] == "span"]
        assert span_records, "profile wrote no spans"
        for record in span_records:
            assert REQUIRED_SPAN_FIELDS <= set(record)
            assert isinstance(record["span_id"], int)
            assert record["duration_ns"] >= 0

        # The acceptance criteria's required span families.
        names = {record["name"] for record in span_records}
        assert "pipeline.block" in names
        assert "tdg.build" in names
        assert any(name.startswith("exec.") for name in names)

        # Nesting survived export: some span has a parent.
        parents = {r["span_id"] for r in span_records}
        assert any(
            r["parent_id"] in parents
            for r in span_records
            if r["parent_id"] is not None
        )

        # Final snapshot carries the speculative abort/retry counters.
        counters = records[-1]["snapshot"]["counters"]
        assert "exec.speculative.reexecuted" in counters
        assert "exec.speculative.aborts" in counters
        assert counters["pipeline.blocks{model=account}"] == 5.0

    def test_round_trips_through_reader(self, tmp_path):
        code, trace_path = _run_profile(tmp_path, blocks="3")
        assert code == 0
        spans, snapshot = read_trace_jsonl(trace_path)
        assert spans and snapshot["counters"]
        roots = [span for span in spans if span.parent_id is None]
        assert roots, "no root span in trace"

    def test_utxo_chain_profiles_too(self, tmp_path):
        code, trace_path = _run_profile(
            tmp_path, chain="dogecoin", blocks="4"
        )
        assert code == 0
        _spans, snapshot = read_trace_jsonl(trace_path)
        assert snapshot["counters"]["tdg.builds{model=utxo}"] == 4.0

    def test_prometheus_out(self, tmp_path, capsys):
        trace_path = tmp_path / "spans.jsonl"
        prom_path = tmp_path / "metrics.prom"
        code = main([
            "profile", "--chain", "ethereum", "--blocks", "3",
            "--scale", "0.5",
            "--trace-out", str(trace_path),
            "--prometheus-out", str(prom_path),
        ])
        assert code == 0
        text = prom_path.read_text()
        assert "# TYPE exec_runs_total counter" in text

    def test_parallel_backend_profile(self, tmp_path):
        """The CI smoke invocation: profile --jobs 2 on a tiny chain."""
        trace_path = tmp_path / "spans.jsonl"
        code = main([
            "profile", "--chain", "ethereum", "--blocks", "4",
            "--scale", "0.5", "--backend", "process", "--jobs", "2",
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        spans, snapshot = read_trace_jsonl(trace_path)
        names = {span.name for span in spans}
        assert "pipeline.parallel.run" in names
        assert "pipeline.parallel.chunk" in names
        assert any(name.startswith("exec.") for name in names)
        counters = snapshot["counters"]
        assert counters["pipeline.parallel.blocks{backend=process}"] == 4.0

    def test_profile_jobs_zero_exits_2(self, tmp_path, capsys):
        code = main([
            "profile", "--chain", "ethereum", "--blocks", "2",
            "--jobs", "0", "--trace-out", str(tmp_path / "x.jsonl"),
        ])
        assert code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_unknown_chain_exits_2_with_message(self, tmp_path, capsys):
        code, _ = _run_profile(tmp_path, chain="solana")
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown chain 'solana'" in err
        assert "ethereum" in err

    def test_bad_cores_rejected(self, tmp_path, capsys):
        trace_path = tmp_path / "spans.jsonl"
        code = main([
            "profile", "--chain", "ethereum", "--blocks", "2",
            "--cores", "0", "--trace-out", str(trace_path),
        ])
        assert code == 2
        assert "--cores" in capsys.readouterr().err

    def test_unwritable_trace_path_exits_2(self, tmp_path, capsys):
        code = main([
            "profile", "--chain", "ethereum", "--blocks", "2",
            "--trace-out", str(tmp_path / "missing" / "x.jsonl"),
        ])
        assert code == 2
        assert "cannot write trace file" in capsys.readouterr().err

    def test_profile_leaves_global_state_disabled(self, tmp_path):
        code, _ = _run_profile(tmp_path, blocks="2")
        assert code == 0
        assert not obs.enabled()
