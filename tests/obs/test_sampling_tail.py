"""Tail-based sampling: slow traces survive the head lottery.

Contract under test: with ``tail_seconds`` set, a head-dropped trace
whose simulated duration reaches the threshold is promoted to a full
trace at close — original timestamps, monotonic, sealed — while fast
head-dropped traces still cost nothing.  Promotion is exact-counted
(``lifecycle.sampled.tail_kept`` / ``tail_evicted``) and the merged
head+tail output is deterministic: same workload, same trace set.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import (
    DEFAULT_TAIL_BUFFER,
    SampledLifecycleTracer,
    SampleRate,
    sample_decision,
)

RATE = SampleRate(1, 10)


def _dropped_ids(n: int, prefix: str = "tx") -> list[str]:
    """The first *n* ids the head lottery drops at RATE."""
    out = []
    i = 0
    while len(out) < n:
        candidate = f"{prefix}{i}"
        if not sample_decision(candidate, RATE):
            out.append(candidate)
        i += 1
    return out


def _kept_id() -> str:
    i = 0
    while not sample_decision(f"tx{i}", RATE):
        i += 1
    return f"tx{i}"


def _drive(tracer: SampledLifecycleTracer, tx: str,
           *, start: float, end: float) -> None:
    tracer.set_clock(start)
    tracer.begin(tx, fee=7)
    tracer.set_clock(start + (end - start) / 2)
    tracer.record(tx, "included")
    tracer.set_clock(end)
    tracer.record(tx, "committed")


class TestValidation:
    def test_negative_tail_rejected(self):
        with pytest.raises(ValueError):
            SampledLifecycleTracer(RATE, tail_seconds=-1.0)

    def test_zero_capacity_buffer_rejected(self):
        with pytest.raises(ValueError):
            SampledLifecycleTracer(RATE, tail_buffer=0)

    def test_defaults_exported(self):
        tracer = SampledLifecycleTracer(RATE)
        assert tracer.tail_seconds is None
        assert DEFAULT_TAIL_BUFFER > 0


class TestPromotion:
    def test_slow_head_dropped_trace_promoted(self):
        tracer = SampledLifecycleTracer(RATE, tail_seconds=5.0)
        slow = _dropped_ids(1)[0]
        _drive(tracer, slow, start=0.0, end=10.0)
        trace = tracer.trace(slow)
        assert trace is not None and trace.closed
        assert [e.stage for e in trace.events] == [
            "admitted", "included", "committed",
        ]
        # Original simulated timestamps, not promotion-time ones.
        assert [e.at for e in trace.events] == [0.0, 5.0, 10.0]
        assert trace.is_monotonic()
        assert tracer.tail_kept_total == 1

    def test_fast_head_dropped_trace_stays_dropped(self):
        tracer = SampledLifecycleTracer(RATE, tail_seconds=5.0)
        fast = _dropped_ids(1)[0]
        _drive(tracer, fast, start=0.0, end=1.0)
        assert tracer.trace(fast) is None
        assert tracer.tail_kept_total == 0
        assert tracer.provisional_open == 0

    def test_threshold_is_inclusive(self):
        tracer = SampledLifecycleTracer(RATE, tail_seconds=5.0)
        edge = _dropped_ids(1)[0]
        _drive(tracer, edge, start=0.0, end=5.0)
        assert tracer.trace(edge) is not None

    def test_tail_zero_keeps_every_closed_trace(self):
        tracer = SampledLifecycleTracer(RATE, tail_seconds=0.0)
        ids = _dropped_ids(5)
        for i, tx in enumerate(ids):
            _drive(tracer, tx, start=float(i), end=float(i) + 0.1)
        assert tracer.tail_kept_total == 5
        assert all(tracer.trace(tx) is not None for tx in ids)

    def test_head_kept_traces_unaffected(self):
        tracer = SampledLifecycleTracer(RATE, tail_seconds=5.0)
        kept = _kept_id()
        _drive(tracer, kept, start=0.0, end=0.5)
        trace = tracer.trace(kept)
        assert trace is not None and trace.closed
        # Head-kept, not a tail promotion.
        assert tracer.tail_kept_total == 0

    def test_dropped_terminal_without_begin_ignored(self):
        tracer = SampledLifecycleTracer(RATE, tail_seconds=0.0)
        orphan = _dropped_ids(1)[0]
        assert tracer.record(orphan, "committed") is None
        assert tracer.trace(orphan) is None
        assert tracer.tail_kept_total == 0

    def test_duplicate_provisional_begin_keeps_original_root(self):
        # Mempool.submit dedups begins with ``trace() is None``, which
        # cannot see the provisional buffer — a tx admitted at several
        # nodes re-begins here and must NOT raise or reset the root.
        tracer = SampledLifecycleTracer(RATE, tail_seconds=5.0)
        tx = _dropped_ids(1)[0]
        tracer.begin(tx, at=0.0)
        tracer.begin(tx, at=3.0)  # second node, later clock: no-op
        assert tracer.provisional_open == 1
        tracer.record(tx, "committed", at=6.0)
        trace = tracer.trace(tx)
        assert trace is not None
        assert trace.events[0].at == 0.0  # original root span kept


class TestBoundedBuffer:
    def test_buffer_stays_bounded_with_evictions_counted(self):
        tracer = SampledLifecycleTracer(
            RATE, tail_seconds=1.0, tail_buffer=8
        )
        ids = _dropped_ids(50)
        for tx in ids:
            tracer.begin(tx)  # never closed: worst-case soak
        assert tracer.provisional_open == 8
        assert tracer.tail_evicted_total == 42

    def test_evicted_trace_loses_tail_chance_cleanly(self):
        tracer = SampledLifecycleTracer(
            RATE, tail_seconds=1.0, tail_buffer=1
        )
        first, second = _dropped_ids(2)
        tracer.set_clock(0.0)
        tracer.begin(first)
        tracer.begin(second)  # evicts first
        tracer.set_clock(100.0)
        tracer.record(first, "committed")  # slow, but buffer is gone
        assert tracer.trace(first) is None
        tracer.record(second, "committed")
        assert tracer.trace(second) is not None


class TestCounters:
    def test_exact_tail_counters_flushed(self):
        registry = MetricsRegistry()
        tracer = SampledLifecycleTracer(
            RATE, registry, tail_seconds=5.0, tail_buffer=2
        )
        slow, fast, a, b, c = _dropped_ids(5)
        _drive(tracer, slow, start=0.0, end=10.0)
        _drive(tracer, fast, start=10.0, end=10.5)
        for tx in (a, b, c):  # c's begin evicts a
            tracer.begin(tx)
        tracer.flush_counts()
        counters = registry.snapshot()["counters"]
        assert counters["lifecycle.sampled.tail_kept"] == 1
        assert counters["lifecycle.sampled.tail_evicted"] == 1
        # Head counters keep their exact head-decision semantics.
        assert counters["lifecycle.sampled.dropped"] == 5

    def test_reads_are_flush_points(self):
        registry = MetricsRegistry()
        tracer = SampledLifecycleTracer(RATE, registry, tail_seconds=0.0)
        tx = _dropped_ids(1)[0]
        _drive(tracer, tx, start=0.0, end=1.0)
        tracer.closed_traces()
        counters = registry.snapshot()["counters"]
        assert counters["lifecycle.sampled.tail_kept"] == 1

    def test_clear_resets_tail_state(self):
        tracer = SampledLifecycleTracer(RATE, tail_seconds=0.0)
        tx = _dropped_ids(1)[0]
        _drive(tracer, tx, start=0.0, end=1.0)
        tracer.begin(_dropped_ids(2)[1])
        tracer.clear()
        assert tracer.tail_kept_total == 0
        assert tracer.provisional_open == 0


class TestDeterministicMerge:
    def _workload(self, tracer: SampledLifecycleTracer) -> list:
        # 60 txs with durations spread around the threshold; the
        # resulting trace set mixes head-kept and tail-promoted.
        for i in range(60):
            tx = f"merge{i}"
            start = float(i)
            _drive(tracer, tx, start=start, end=start + (i % 7))
        return sorted(
            (t.as_dict() for t in tracer.traces()),
            key=lambda d: d["trace_id"],
        )

    def test_same_workload_same_merged_trace_set(self):
        first = self._workload(
            SampledLifecycleTracer(RATE, tail_seconds=3.0)
        )
        second = self._workload(
            SampledLifecycleTracer(RATE, tail_seconds=3.0)
        )
        assert first == second
        trace_ids = {d["trace_id"] for d in first}
        head_kept = {
            tx for tx in trace_ids if sample_decision(tx, RATE)
        }
        tail_only = trace_ids - head_kept
        assert head_kept and tail_only, (
            "workload must exercise both head and tail paths"
        )

    def test_tail_promoted_equals_head_kept_shape(self):
        # A promoted trace must be indistinguishable from what a full
        # tracer would have recorded for the same events.
        full = SampledLifecycleTracer(SampleRate(1, 1))
        tailed = SampledLifecycleTracer(RATE, tail_seconds=0.0)
        tx = _dropped_ids(1)[0]
        _drive(full, tx, start=2.0, end=9.0)
        _drive(tailed, tx, start=2.0, end=9.0)
        assert full.trace(tx).as_dict() == tailed.trace(tx).as_dict()
