"""Metric primitives: counters, gauges, histogram percentile math,
label keying, registry snapshots, and the thread-safety smoke test."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    NOOP_REGISTRY,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
    label_key,
    render_metric_key,
)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7)
        gauge.inc(3)
        assert gauge.value == 10.0

    def test_same_name_and_labels_resolve_to_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("exec.runs", executor="occ", cores=8)
        b = registry.counter("exec.runs", cores=8, executor="occ")
        assert a is b  # label order must not matter
        assert registry.counter("exec.runs", cores=4) is not a

    def test_same_name_different_kind_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.gauge("x").set(5)
        assert registry.counter("x").value == 1.0
        assert registry.gauge("x").value == 5.0


class TestLabelRendering:
    def test_label_key_sorts_and_stringifies(self):
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_render_metric_key(self):
        assert render_metric_key("n", ()) == "n"
        key = render_metric_key("n", (("a", "1"), ("b", "2")))
        assert key == "n{a=1,b=2}"


class TestHistogramPercentiles:
    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.percentile(0.5) == 0.0
        assert hist.summary()["count"] == 0

    def test_single_value(self):
        hist = Histogram("h")
        hist.observe(42.0)
        for p in (0.0, 0.5, 1.0):
            assert hist.percentile(p) == 42.0

    def test_interpolated_percentiles(self):
        hist = Histogram("h")
        for value in (1, 2, 3, 4):
            hist.observe(value)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 4.0
        assert hist.percentile(0.5) == 2.5
        assert hist.percentile(0.25) == pytest.approx(1.75)

    def test_percentiles_are_order_independent(self):
        forward, backward = Histogram("f"), Histogram("b")
        for value in range(100):
            forward.observe(value)
            backward.observe(99 - value)
        for p in (0.1, 0.5, 0.9, 0.99):
            assert forward.percentile(p) == backward.percentile(p)

    def test_summary_fields(self):
        hist = Histogram("h")
        for value in range(1, 11):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 10
        assert summary["sum"] == 55.0
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["mean"] == 5.5
        assert summary["p50"] == 5.5

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)


class TestSnapshot:
    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(3)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c{k=v}": 3.0}
        assert snapshot["gauges"] == {"g": 2.0}
        assert snapshot["histograms"]["h"]["count"] == 1


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        per_thread, num_threads = 10_000, 8

        def work():
            for _ in range(per_thread):
                registry.counter("hits").inc()
                registry.histogram("obs").observe(1.0)

        threads = [threading.Thread(target=work)
                   for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("hits").value == per_thread * num_threads
        assert registry.histogram("obs").count == per_thread * num_threads

    def test_concurrent_registration_yields_one_metric(self):
        registry = MetricsRegistry()
        results = []

        def register():
            results.append(registry.counter("shared", a=1))

        threads = [threading.Thread(target=register) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(metric is results[0] for metric in results)


class TestNoopRegistry:
    def test_returns_shared_singletons_and_records_nothing(self):
        registry = NoopMetricsRegistry()
        a = registry.counter("anything", label="x")
        b = registry.counter("other")
        assert a is b
        a.inc(100)
        assert a.value == 0.0
        registry.gauge("g").set(9)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_disabled_flag(self):
        assert NOOP_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True


class TestDumpAndMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("exec.runs", executor="occ").inc(3)
        registry.gauge("mempool.size").set(10)
        for value in (1.0, 4.0, 9.0):
            registry.histogram("exec.wall_time").observe(value)
        return registry

    def test_dump_is_lossless_for_histograms(self):
        registry = self._populated()
        (hist,) = [
            r for r in registry.dump() if r["kind"] == "histogram"
        ]
        assert hist["values"] == [1.0, 4.0, 9.0]

    def test_merge_sums_counters_and_concatenates_histograms(self):
        parent = self._populated()
        worker = self._populated()
        worker.gauge("mempool.size").set(99)
        parent.merge_dump(worker.dump())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["exec.runs{executor=occ}"] == 6.0
        assert snapshot["gauges"]["mempool.size"] == 99.0  # last wins
        merged = snapshot["histograms"]["exec.wall_time"]
        assert merged["count"] == 6
        assert merged["sum"] == 28.0
        # Percentile fidelity survives the merge (raw values, not
        # pre-aggregated summaries).
        assert parent.histogram("exec.wall_time").percentile(0.5) == 4.0

    def test_merge_into_empty_registry_reproduces_source(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge_dump(source.dump())
        assert target.snapshot() == source.snapshot()

    def test_dump_round_trips_through_pickle(self):
        import pickle

        dump = pickle.loads(pickle.dumps(self._populated().dump()))
        target = MetricsRegistry()
        target.merge_dump(dump)
        assert target.snapshot() == self._populated().snapshot()


class TestConcurrentMergeDump:
    def test_merges_from_many_threads_are_exact(self):
        """Thread-backend workers merge their dumps into the parent
        concurrently at join; totals must come out exact."""
        parent = MetricsRegistry()
        num_workers, per_worker = 8, 200

        def worker_dump():
            worker = MetricsRegistry()
            worker.counter("lifecycle.events").inc(per_worker)
            for value in range(per_worker):
                worker.histogram(
                    "lifecycle.stage.committed"
                ).observe(float(value))
            return worker.dump()

        dumps = [worker_dump() for _ in range(num_workers)]
        threads = [
            threading.Thread(target=parent.merge_dump, args=(dump,))
            for dump in dumps
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert parent.counter("lifecycle.events").value == \
            num_workers * per_worker
        hist = parent.histogram("lifecycle.stage.committed")
        assert hist.count == num_workers * per_worker
        assert hist.percentile(1.0) == float(per_worker - 1)

    def test_merge_while_recording_loses_nothing(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("lifecycle.events").inc(500)
        dump = worker.dump()
        stop = threading.Event()

        def record():
            while not stop.is_set():
                parent.counter("lifecycle.opened").inc()

        recorder = threading.Thread(target=record)
        recorder.start()
        try:
            mergers = [
                threading.Thread(target=parent.merge_dump, args=(dump,))
                for _ in range(4)
            ]
            for thread in mergers:
                thread.start()
            for thread in mergers:
                thread.join()
        finally:
            stop.set()
            recorder.join()
        assert parent.counter("lifecycle.events").value == 2000.0
        assert parent.counter("lifecycle.opened").value > 0


class TestHistogramPolicy:
    def test_exact_is_the_default_policy(self):
        registry = MetricsRegistry()
        assert registry.policy == "exact"
        assert type(registry.histogram("lifecycle.stage.committed")) \
            is Histogram

    def test_sketch_policy_builds_sketch_histograms(self):
        from repro.obs.sketch import SketchHistogram

        registry = MetricsRegistry(policy="sketch")
        assert registry.policy == "sketch"
        hist = registry.histogram("lifecycle.stage.committed")
        assert isinstance(hist, SketchHistogram)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics policy"):
            MetricsRegistry(policy="approximate")

    def test_sketch_dump_refuses_exact_policy_target(self):
        source = MetricsRegistry(policy="sketch")
        for value in range(300):
            source.histogram("lifecycle.stage.committed").observe(
                float(value), key=f"tx{value}"
            )
        target = MetricsRegistry()  # exact: raw samples are gone
        with pytest.raises(ValueError, match="policy='sketch'"):
            target.merge_dump(source.dump())

    def test_exact_dump_merges_under_either_policy(self):
        source = MetricsRegistry()
        for value in range(100):
            source.histogram("lifecycle.stage.committed").observe(
                float(value)
            )
        source.counter("lifecycle.opened").inc(100)
        dump = source.dump()
        for policy in ("exact", "sketch"):
            target = MetricsRegistry(policy=policy)
            target.merge_dump(dump)
            hist = target.histogram("lifecycle.stage.committed")
            assert hist.count == 100
            assert target.counter("lifecycle.opened").value == 100.0
