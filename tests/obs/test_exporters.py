"""Exporter round-trips: JSONL spans/metrics, Prometheus text, and the
human summary tables."""

from __future__ import annotations

import json

import pytest

from repro.obs.exporters import (
    TRACE_SCHEMA_VERSION,
    read_trace_jsonl,
    registry_snapshot_json,
    render_prometheus,
    render_summary,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _populated_backends() -> tuple[Tracer, MetricsRegistry]:
    tracer = Tracer()
    registry = MetricsRegistry()
    with tracer.span("pipeline.block", height=1):
        with tracer.span("tdg.build", model="utxo") as span:
            span.set(edges=4)
    registry.counter("exec.occ.aborts").inc(7)
    registry.gauge("mempool.size", chain="btc").set(42)
    for value in (1.0, 2.0, 3.0):
        registry.histogram("exec.wall_time", executor="occ").observe(value)
    return tracer, registry


class TestJsonlRoundTrip:
    def test_spans_and_snapshot_survive(self, tmp_path):
        tracer, registry = _populated_backends()
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(path, tracer, registry)
        assert count == 2

        spans, snapshot = read_trace_jsonl(path)
        assert [span.name for span in spans] == [
            "tdg.build", "pipeline.block",
        ]
        inner, outer = spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.attrs == {"model": "utxo", "edges": 4}
        assert inner.duration_ns >= 0

        assert snapshot == registry.snapshot()
        assert snapshot["counters"]["exec.occ.aborts"] == 7.0
        assert snapshot["gauges"]["mempool.size{chain=btc}"] == 42.0
        assert snapshot["histograms"][
            "exec.wall_time{executor=occ}"
        ]["count"] == 3

    def test_every_line_is_valid_json_with_known_type(self, tmp_path):
        tracer, registry = _populated_backends()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, tracer, registry)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "type": "header", "schema_version": TRACE_SCHEMA_VERSION,
        }
        assert all(r["type"] in ("header", "span", "metrics")
                   for r in records)
        assert records[-1]["type"] == "metrics"

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown record type"):
            read_trace_jsonl(path)

    def test_future_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"type": "header", "schema_version": 999}) + "\n"
        )
        with pytest.raises(ValueError, match="schema version"):
            read_trace_jsonl(path)


class TestPrometheus:
    def test_counter_gauge_histogram_lines(self):
        _tracer, registry = _populated_backends()
        text = render_prometheus(registry)
        assert "# TYPE exec_occ_aborts counter" in text
        assert "exec_occ_aborts 7" in text
        assert '''mempool_size{chain="btc"} 42''' in text
        assert "# TYPE exec_wall_time summary" in text
        assert '''exec_wall_time{executor="occ",quantile="0.5"} 2''' in text
        assert '''exec_wall_time_count{executor="occ"} 3''' in text


class TestSummary:
    def test_summary_tables_render(self):
        tracer, registry = _populated_backends()
        text = render_summary(tracer, registry)
        assert "spans by name" in text
        assert "pipeline.block" in text
        assert "counters" in text
        assert "exec.occ.aborts" in text
        assert "histograms" in text

    def test_empty_state(self):
        assert "no spans or metrics" in render_summary(
            Tracer(), MetricsRegistry()
        )


class TestSnapshotJson:
    def test_stable_and_parseable(self):
        _tracer, registry = _populated_backends()
        text = registry_snapshot_json(registry)
        assert json.loads(text) == registry.snapshot()
        assert text == registry_snapshot_json(registry)  # deterministic
