"""Exporter round-trips: JSONL spans/metrics, Prometheus text, and the
human summary tables."""

from __future__ import annotations

import json

import pytest

from repro.obs.exporters import (
    COST_UNIT_US,
    TRACE_SCHEMA_VERSION,
    chrome_trace_events,
    read_trace_jsonl,
    registry_snapshot_json,
    render_prometheus,
    render_summary,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import FlightRecorder
from repro.obs.tracer import Tracer


def _populated_backends() -> tuple[Tracer, MetricsRegistry]:
    tracer = Tracer()
    registry = MetricsRegistry()
    with tracer.span("pipeline.block", height=1):
        with tracer.span("tdg.build", model="utxo") as span:
            span.set(edges=4)
    registry.counter("exec.occ.aborts").inc(7)
    registry.gauge("mempool.size", chain="btc").set(42)
    for value in (1.0, 2.0, 3.0):
        registry.histogram("exec.wall_time", executor="occ").observe(value)
    return tracer, registry


class TestJsonlRoundTrip:
    def test_spans_and_snapshot_survive(self, tmp_path):
        tracer, registry = _populated_backends()
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(path, tracer, registry)
        assert count == 2

        spans, snapshot = read_trace_jsonl(path)
        assert [span.name for span in spans] == [
            "tdg.build", "pipeline.block",
        ]
        inner, outer = spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.attrs == {"model": "utxo", "edges": 4}
        assert inner.duration_ns >= 0

        assert snapshot == registry.snapshot()
        assert snapshot["counters"]["exec.occ.aborts"] == 7.0
        assert snapshot["gauges"]["mempool.size{chain=btc}"] == 42.0
        assert snapshot["histograms"][
            "exec.wall_time{executor=occ}"
        ]["count"] == 3

    def test_every_line_is_valid_json_with_known_type(self, tmp_path):
        tracer, registry = _populated_backends()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, tracer, registry)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "type": "header", "schema_version": TRACE_SCHEMA_VERSION,
        }
        assert all(r["type"] in ("header", "span", "metrics")
                   for r in records)
        assert records[-1]["type"] == "metrics"

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown record type"):
            read_trace_jsonl(path)

    def test_future_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"type": "header", "schema_version": 999}) + "\n"
        )
        with pytest.raises(ValueError, match="schema version"):
            read_trace_jsonl(path)


class TestPrometheus:
    def test_counter_gauge_histogram_lines(self):
        _tracer, registry = _populated_backends()
        text = render_prometheus(registry)
        assert "# TYPE exec_occ_aborts_total counter" in text
        assert "exec_occ_aborts_total 7" in text
        assert '''mempool_size{chain="btc"} 42''' in text
        assert "# TYPE exec_wall_time summary" in text
        assert '''exec_wall_time{executor="occ",quantile="0.5"} 2''' in text
        assert '''exec_wall_time_count{executor="occ"} 3''' in text

    def test_counters_drop_unsuffixed_names_by_default(self):
        _tracer, registry = _populated_backends()
        lines = render_prometheus(registry).splitlines()
        assert not any(
            line.startswith("exec_occ_aborts ") for line in lines
        )

    def test_already_suffixed_counter_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("gossip.messages_total").inc(5)
        text = render_prometheus(registry)
        assert "gossip_messages_total 5" in text
        assert "gossip_messages_total_total" not in text

    def test_legacy_counter_names_alias(self):
        registry = MetricsRegistry()
        registry.counter("exec.occ.aborts").inc(7)
        text = render_prometheus(registry, legacy_counter_names=True)
        # Both the canonical _total series and the pre-migration name.
        assert "exec_occ_aborts_total 7" in text
        assert "# TYPE exec_occ_aborts counter" in text
        assert "\nexec_occ_aborts 7" in text

    def test_legacy_flag_skips_alias_when_already_suffixed(self):
        registry = MetricsRegistry()
        registry.counter("gossip.messages_total").inc(5)
        text = render_prometheus(registry, legacy_counter_names=True)
        assert text.count("gossip_messages_total 5") == 1


class TestSummary:
    def test_summary_tables_render(self):
        tracer, registry = _populated_backends()
        text = render_summary(tracer, registry)
        assert "spans by name" in text
        assert "pipeline.block" in text
        assert "counters" in text
        assert "exec.occ.aborts" in text
        assert "histograms" in text

    def test_empty_state(self):
        assert "no spans or metrics" in render_summary(
            Tracer(), MetricsRegistry()
        )


class TestSnapshotJson:
    def test_stable_and_parseable(self):
        _tracer, registry = _populated_backends()
        text = registry_snapshot_json(registry)
        assert json.loads(text) == registry.snapshot()
        assert text == registry_snapshot_json(registry)  # deterministic


class TestPrometheusSanitization:
    def test_metric_names_coerced_to_charset(self):
        registry = MetricsRegistry()
        registry.counter("exec.occ.aborts").inc(1)
        registry.counter("weird metric-name!").inc(2)
        registry.counter("1starts_with_digit").inc(3)
        registry.counter("legal:colon_name").inc(4)
        text = render_prometheus(registry)
        assert "exec_occ_aborts_total 1" in text
        assert "weird_metric_name__total 2" in text
        assert "_1starts_with_digit_total 3" in text
        # Colons are legal in names.
        assert "legal:colon_name_total 4" in text

    def test_label_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter(
            "m", **{"label.with-dots": "v", "ok_label": "w"}
        ).inc(1)
        text = render_prometheus(registry)
        assert 'label_with_dots="v"' in text
        assert 'ok_label="w"' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "m", tricky='a"b\\c\nd'
        ).inc(1)
        text = render_prometheus(registry)
        # Escaped: backslash -> \\, quote -> \", newline -> \n — and
        # the rendered output itself stays one line per sample.
        assert 'tricky="a\\"b\\\\c\\nd"' in text
        payload_lines = [
            line for line in text.splitlines() if "tricky" in line
        ]
        assert len(payload_lines) == 1

    def test_empty_histogram_renders_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("exec.wall_time")  # created, never observed
        text = render_prometheus(registry)
        assert "exec_wall_time_count 0" in text
        assert "exec_wall_time_sum 0" in text
        assert "quantile" not in text

    def test_empty_histogram_summary_table_renders_dashes(self):
        registry = MetricsRegistry()
        registry.histogram("exec.wall_time")
        text = render_summary(Tracer(), registry)
        assert "exec.wall_time" in text  # present, not crashed


class TestPrometheusSketchFamilies:
    """Sketch-policy registries render through the same summary path."""

    def _sketch_registry(self):
        registry = MetricsRegistry(policy="sketch")
        hist = registry.histogram(
            "lifecycle.stage latency!", executor="occ"
        )
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        registry.counter("lifecycle.sampled.kept").inc(4)
        return registry

    def test_sketch_histogram_renders_as_summary(self):
        text = render_prometheus(self._sketch_registry())
        assert "# TYPE lifecycle_stage_latency_ summary" in text
        assert (
            '''lifecycle_stage_latency_{executor="occ",quantile="0.5"}'''
            in text
        )
        assert (
            '''lifecycle_stage_latency__count{executor="occ"} 4''' in text
        )
        assert "lifecycle_sampled_kept_total 4" in text

    def test_sketch_label_values_escaped(self):
        registry = MetricsRegistry(policy="sketch")
        hist = registry.histogram("m", tricky='a"b\\c\nd')
        hist.observe(1.0)
        text = render_prometheus(registry)
        assert 'tricky="a\\"b\\\\c\\nd"' in text
        payload_lines = [
            line for line in text.splitlines() if "tricky" in line
        ]
        # quantile lines (p50/p90/p99 collapse when few samples) + sum
        # + count — every sample stays one physical line.
        assert len(payload_lines) >= 3

    def test_empty_sketch_histogram_renders_no_quantiles(self):
        registry = MetricsRegistry(policy="sketch")
        registry.histogram("exec.wall_time")
        text = render_prometheus(registry)
        assert "exec_wall_time_count 0" in text
        assert "quantile" not in text


class TestChromeTrace:
    def _recorder(self):
        recorder = FlightRecorder()
        with recorder.block(5):
            recorder.record("schedule", "tx0", executor="spec", clock=0.0)
            recorder.record("start", "tx0", executor="spec", lane=0,
                            clock=0.0, cost=2.0)
            recorder.record("commit", "tx0", executor="spec", lane=0,
                            clock=2.0, cost=2.0)
            recorder.record("start", "tx1", executor="spec", lane=1,
                            clock=0.0, cost=1.0)
            recorder.record("abort", "tx1", executor="spec", lane=1,
                            clock=1.0, cost=1.0)
            recorder.record("retry", "tx1", executor="spec", clock=1.0,
                            round_index=1)
        return recorder

    def test_slices_instants_and_metadata(self):
        events = chrome_trace_events(self._recorder().events())
        by_phase = {}
        for event in events:
            by_phase.setdefault(event["ph"], []).append(event)
        # Metadata: one process name + two lane threads + the queue.
        names = {
            (m["name"], m["args"]["name"]) for m in by_phase["M"]
        }
        assert ("process_name", "spec") in names
        assert ("thread_name", "queue") in names
        assert ("thread_name", "lane 0") in names
        assert ("thread_name", "lane 1") in names
        # Slices: tx0 committed on tid 1, tx1 aborted on tid 2.
        slices = {s["name"]: s for s in by_phase["X"]}
        assert slices["tx0"]["tid"] == 1
        assert slices["tx0"]["dur"] == 2.0 * COST_UNIT_US
        assert slices["tx0"]["args"]["outcome"] == "commit"
        assert slices["tx1"]["tid"] == 2
        assert slices["tx1"]["args"]["outcome"] == "abort"
        assert slices["tx1"]["args"]["block"] == 5
        # Instants land on the queue thread (tid 0).
        assert {i["tid"] for i in by_phase["i"]} == {0}
        assert {i["cat"] for i in by_phase["i"]} == {"schedule", "retry"}

    def test_clock_unit_scaling(self):
        events = chrome_trace_events(
            self._recorder().events(), clock_unit_us=10.0
        )
        (tx0,) = [e for e in events if e.get("name") == "tx0"]
        assert tx0["dur"] == 20.0

    def test_blocks_laid_out_side_by_side(self):
        recorder = FlightRecorder()
        for height in (1, 2):
            with recorder.block(height):
                recorder.record("start", f"b{height}", executor="e",
                                lane=0, clock=0.0, cost=1.0)
                recorder.record("commit", f"b{height}", executor="e",
                                lane=0, clock=1.0, cost=1.0)
        slices = [
            e for e in chrome_trace_events(recorder.events())
            if e["ph"] == "X"
        ]
        ts = {s["name"]: s["ts"] for s in slices}
        # Block 2 starts after block 1's extent, not on top of it.
        assert ts["b2"] == ts["b1"] + 1.0 * COST_UNIT_US

    def test_write_chrome_trace_file_shape(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, self._recorder().events())
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["schema_version"] == \
            TRACE_SCHEMA_VERSION
        assert document["otherData"]["clock_unit_us"] == COST_UNIT_US

    def test_unpaired_finish_skipped_not_raised(self):
        recorder = FlightRecorder()
        recorder.record("commit", "ghost", executor="e", lane=0, clock=1.0)
        assert [
            e["ph"] for e in chrome_trace_events(recorder.events())
        ] == ["M"]  # only the process metadata, no slice


def _dag_recorder_with_edge():
    """Two tasks, a handoff a->b, plus one dangling edge."""
    recorder = FlightRecorder()
    with recorder.block(1):
        recorder.record("start", "a", executor="dag", lane=0,
                        clock=0.0, cost=2.0)
        recorder.record("commit", "a", executor="dag", lane=0,
                        clock=2.0)
        recorder.record("start", "b", executor="dag", lane=1,
                        clock=2.0, cost=1.0)
        recorder.record("commit", "b", executor="dag", lane=1,
                        clock=3.0)
        recorder.record("edge", "a->b", executor="dag", clock=2.0)
        recorder.record("edge", "a->ghost", executor="dag", clock=2.0)
    return recorder


class TestEdgeFlowEvents:
    def test_edges_become_flow_pairs_bound_to_slices(self):
        events = chrome_trace_events(
            _dag_recorder_with_edge().events(), clock_unit_us=1.0
        )
        flows = [e for e in events if e.get("cat") == "handoff"]
        # One resolvable edge -> one s/f pair; the dangling edge
        # (missing successor slice) is skipped, not drawn.
        assert [e["ph"] for e in flows] == ["s", "f"]
        start, finish = flows
        assert start["args"] == {"from": "a", "to": "b", "block": 1}
        assert start["id"] == finish["id"]
        assert finish["bp"] == "e"
        # The arrow leaves a's commit and lands on b's start.
        assert start["ts"] == 2.0
        assert finish["ts"] == 2.0
        assert start["tid"] == 1   # a on lane 0
        assert finish["tid"] == 2  # b on lane 1

    def test_edge_events_emit_no_slices_or_instants(self):
        events = chrome_trace_events(
            _dag_recorder_with_edge().events(), clock_unit_us=1.0
        )
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"a", "b"}


class TestLifecycleTraceEvents:
    def _traces(self):
        from repro.obs.lifecycle import LifecycleTracer

        tracer = LifecycleTracer()
        tracer.begin("tx1", at=0.0)
        tracer.record("tx1", "included", at=2.0)
        tracer.close("tx1", at=3.0)
        tracer.begin("lonely", at=1.0)
        return tracer.traces()

    def test_stage_swimlanes_and_flow_chain(self):
        from repro.obs.exporters import (
            LIFECYCLE_PID,
            lifecycle_trace_events,
        )

        events = lifecycle_trace_events(self._traces(), second_us=10.0)
        assert all(e["pid"] == LIFECYCLE_PID for e in events)
        names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"admitted", "included", "committed"}
        slices = [e for e in events if e["ph"] == "X"
                  and e["name"] == "tx1"]
        # Slices extend to the next stage event: 0->2, 2->3, terminal 0.
        assert [(e["ts"], e["dur"]) for e in slices] == [
            (0.0, 20.0), (20.0, 10.0), (30.0, 0.0),
        ]
        flow = [e for e in events if e.get("cat") == "lifecycle"
                and e["ph"] in ("s", "t", "f")]
        assert [e["ph"] for e in flow] == ["s", "t", "f"]
        assert len({e["id"] for e in flow}) == 1
        assert flow[-1]["bp"] == "e"

    def test_single_event_trace_gets_no_flow(self):
        from repro.obs.exporters import lifecycle_trace_events

        events = lifecycle_trace_events(self._traces())
        lonely = [e for e in events if e.get("name") == "lonely"]
        assert [e["ph"] for e in lonely] == ["X"]

    def test_empty_traces_emit_nothing(self):
        from repro.obs.exporters import lifecycle_trace_events

        assert lifecycle_trace_events([]) == []

    def test_write_chrome_trace_joins_lifecycle_process(self, tmp_path):
        from repro.obs.exporters import LIFECYCLE_PID

        path = tmp_path / "joined.json"
        recorder = _dag_recorder_with_edge()
        count = write_chrome_trace(
            path, recorder.events(), lifecycle_traces=self._traces()
        )
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert count == len(events)
        pids = {e["pid"] for e in events}
        assert LIFECYCLE_PID in pids and len(pids) > 1
        assert document["otherData"]["second_us"] == 1000.0
