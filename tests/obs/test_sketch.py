"""Bounded-memory sketch histograms: exact-mode parity with the exact
histogram, documented percentile tolerance past the reservoir, and the
chunking-invariance property — sketch-merge over ANY split of a stream
equals single-stream ingestion (hypothesis asserts equality, not
tolerance)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.sketch import (
    DEFAULT_ALPHA,
    DEFAULT_RESERVOIR_SIZE,
    SketchHistogram,
    reservoir_priority,
)

QUANTILES = (0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0)

values_strategy = st.lists(
    st.one_of(
        st.floats(
            min_value=1e-6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        st.floats(
            min_value=-1e6, max_value=-1e-6,
            allow_nan=False, allow_infinity=False,
        ),
        st.just(0.0),
    ),
    min_size=1, max_size=200,
)


def _chunk(values: list[float], boundaries: list[int]):
    cuts = sorted({b % (len(values) + 1) for b in boundaries})
    edges = [0, *cuts, len(values)]
    return [
        values[start:stop]
        for start, stop in zip(edges, edges[1:])
        if start < stop
    ]


class TestConstruction:
    def test_tuning_validation(self):
        with pytest.raises(ValueError):
            SketchHistogram("h", alpha=0.0)
        with pytest.raises(ValueError):
            SketchHistogram("h", alpha=1.0)
        with pytest.raises(ValueError):
            SketchHistogram("h", reservoir_size=0)

    def test_empty_sketch(self):
        sketch = SketchHistogram("h")
        assert sketch.count == 0
        assert sketch.percentile(0.5) == 0.0
        assert sketch.summary() == {"count": 0, "sum": 0.0}

    def test_priority_is_deterministic(self):
        assert reservoir_priority("tx1") == reservoir_priority("tx1")
        assert reservoir_priority("tx1") != reservoir_priority("tx2")


class TestExactMode:
    """While count <= reservoir_size, nothing has been evicted and the
    sketch must agree with the exact histogram bit for bit."""

    def test_summary_matches_exact_histogram(self):
        rng = random.Random(2020)
        values = [rng.lognormvariate(0.0, 1.5) for _ in range(200)]
        exact = Histogram("h")
        sketch = SketchHistogram("h")
        for index, value in enumerate(values):
            exact.observe(value)
            sketch.observe(value, key=f"tx{index}")
        assert sketch.is_exact
        assert sketch.summary() == exact.summary()
        for quantile in QUANTILES:
            assert sketch.percentile(quantile) == \
                exact.percentile(quantile)

    def test_exactness_ends_after_reservoir_overflow(self):
        sketch = SketchHistogram("h", reservoir_size=8)
        for index in range(9):
            sketch.observe(float(index), key=f"tx{index}")
        assert not sketch.is_exact


class TestBucketAccuracy:
    def test_percentiles_within_documented_tolerance(self):
        rng = random.Random(2020)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(10_000)]
        exact = Histogram("h")
        sketch = SketchHistogram("h")
        for index, value in enumerate(values):
            exact.observe(value)
            sketch.observe(value, key=f"tx{index}")
        assert not sketch.is_exact
        for quantile in (0.50, 0.90, 0.95, 0.99):
            reference = exact.percentile(quantile)
            approx = sketch.percentile(quantile)
            assert abs(approx - reference) <= \
                2 * DEFAULT_ALPHA * abs(reference)

    def test_exact_moments_regardless_of_reservoir(self):
        rng = random.Random(7)
        values = [rng.uniform(-50.0, 50.0) for _ in range(5_000)]
        values[17] = 0.0
        sketch = SketchHistogram("h", reservoir_size=16)
        for index, value in enumerate(values):
            sketch.observe(value, key=f"tx{index}")
        assert sketch.count == len(values)
        assert sketch.total == pytest.approx(sum(values))
        assert sketch.mean == pytest.approx(
            sum(values) / len(values)
        )
        summary = sketch.summary()
        assert summary["min"] == min(values)
        assert summary["max"] == max(values)

    def test_percentiles_clamped_to_observed_range(self):
        sketch = SketchHistogram("h", reservoir_size=4)
        for index in range(1000):
            sketch.observe(1.0 + (index % 7) * 0.25, key=f"tx{index}")
        assert sketch.percentile(0.0) >= 1.0
        assert sketch.percentile(1.0) <= 1.0 + 6 * 0.25


class TestMerge:
    def test_alpha_mismatch_rejected(self):
        left = SketchHistogram("h", alpha=0.01)
        right = SketchHistogram("h", alpha=0.02)
        right.observe(1.0, key="tx0")
        with pytest.raises(ValueError, match="different alpha"):
            left.merge_state(right.state())

    def test_merging_empty_state_is_identity(self):
        sketch = SketchHistogram("h")
        sketch.observe(3.0, key="tx0")
        before = sketch.state()
        sketch.merge_state(SketchHistogram("h").state())
        assert sketch.state() == before

    @settings(max_examples=60, deadline=None)
    @given(
        values=values_strategy,
        boundaries=st.lists(st.integers(0, 10_000), max_size=6),
        reservoir_size=st.sampled_from([4, 32, DEFAULT_RESERVOIR_SIZE]),
    )
    def test_merge_over_any_chunking_equals_single_stream(
        self, values, boundaries, reservoir_size
    ):
        # Keys are positional over the WHOLE stream, so re-chunking
        # never changes any observation's reservoir priority.
        keyed = [(f"tx{i}", v) for i, v in enumerate(values)]
        single = SketchHistogram("h", reservoir_size=reservoir_size)
        for key, value in keyed:
            single.observe(value, key=key)

        merged = SketchHistogram("h", reservoir_size=reservoir_size)
        start = 0
        for chunk in _chunk(values, boundaries):
            part = SketchHistogram("h", reservoir_size=reservoir_size)
            for key, value in keyed[start:start + len(chunk)]:
                part.observe(value, key=key)
            start += len(chunk)
            merged.merge_state(part.state())

        single_state = single.state()
        merged_state = merged.state()
        # Float accumulation order differs across chunkings; everything
        # else — bucket tables, reservoir contents, count, extrema —
        # must match exactly.
        assert merged_state.pop("sum") == \
            pytest.approx(single_state.pop("sum"))
        single_state.pop("reservoir")
        merged_state.pop("reservoir")
        assert merged_state == single_state
        assert sorted(v for _, v in merged._reservoir) == \
            sorted(v for _, v in single._reservoir)
        for quantile in QUANTILES:
            assert merged.percentile(quantile) == \
                single.percentile(quantile)


class TestRegistryIntegration:
    def test_sketch_policy_builds_sketch_histograms(self):
        registry = MetricsRegistry(policy="sketch")
        histogram = registry.histogram("lifecycle.stage.consensus")
        assert isinstance(histogram, SketchHistogram)
        assert isinstance(
            MetricsRegistry().histogram("h"), Histogram
        )

    def test_dump_merge_roundtrip_between_sketch_registries(self):
        source = MetricsRegistry(policy="sketch")
        histogram = source.histogram("lifecycle.stage.consensus")
        for index in range(500):
            histogram.observe(0.5 + index * 0.01, key=f"tx{index}")
        source.counter("lifecycle.sampled.kept").inc(5)

        target = MetricsRegistry(policy="sketch")
        target.merge_dump(source.dump())
        merged = target.histogram("lifecycle.stage.consensus")
        assert merged.count == 500
        for quantile in (0.5, 0.95, 0.99):
            assert merged.percentile(quantile) == \
                histogram.percentile(quantile)
        assert target.counter("lifecycle.sampled.kept").value == 5
