"""Lifecycle tracer unit and property tests: causal chains, monotonic
clamping, terminal sealing, flight-recorder stitching, aggregation, and
trace-context pickling across process-pool workers."""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.lifecycle import (
    COMMITTED,
    DROPPED,
    NOOP_LIFECYCLE,
    STAGES,
    TERMINAL_STAGES,
    LifecycleTracer,
    StitchedTrace,
    TraceContext,
    slowest_traces,
    stage_breakdown,
    stage_shares,
    stitch_execution_events,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import FlightRecorder


class TestTraceContext:
    def test_child_links_parent(self):
        root = TraceContext(trace_id="tx1", span_id=1)
        child = root.child(7)
        assert child.trace_id == "tx1"
        assert child.span_id == 7
        assert child.parent_id == 1

    def test_pickle_round_trip(self):
        context = TraceContext(trace_id="tx1", span_id=3, parent_id=1)
        assert pickle.loads(pickle.dumps(context)) == context


def _derive_child(context: TraceContext) -> TraceContext:
    """Module-level so a spawn-based pool can pickle it."""
    return context.child(context.span_id + 100)


class TestTraceContextAcrossProcesses:
    def test_contexts_survive_process_pool_workers(self):
        """The context rides to a worker and back with the chain intact
        — the property block-level chunk workers rely on."""
        contexts = [
            TraceContext(trace_id=f"tx{i}", span_id=i) for i in range(8)
        ]
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                children = list(pool.map(_derive_child, contexts))
        except (OSError, PermissionError):  # no sem_open in sandbox
            children = [
                _derive_child(pickle.loads(pickle.dumps(context)))
                for context in contexts
            ]
        assert [child.trace_id for child in children] == [
            context.trace_id for context in contexts
        ]
        assert all(
            child.parent_id == context.span_id
            for child, context in zip(children, contexts)
        )


class TestLifecycleTracer:
    def test_begin_mints_admitted_root(self):
        tracer = LifecycleTracer()
        context = tracer.begin("tx1", fee=10)
        assert context.trace_id == "tx1"
        assert context.parent_id is None
        trace = tracer.trace("tx1")
        assert trace.stages == ("admitted",)
        assert trace.events[0].attrs == {"fee": 10}

    def test_begin_twice_rejected(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1")
        with pytest.raises(ValueError, match="already exists"):
            tracer.begin("tx1")
        tracer.close("tx1")
        with pytest.raises(ValueError, match="already exists"):
            tracer.begin("tx1")

    def test_record_builds_causal_chain(self):
        tracer = LifecycleTracer()
        root = tracer.begin("tx1")
        relayed = tracer.record("tx1", "relayed", hop=1)
        included = tracer.record("tx1", "included")
        assert relayed.parent_id == root.span_id
        assert included.parent_id == relayed.span_id
        events = tracer.trace("tx1").events
        assert [e.parent_id for e in events] == [
            None, root.span_id, relayed.span_id,
        ]

    def test_unknown_stage_rejected(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1")
        with pytest.raises(ValueError, match="unknown lifecycle stage"):
            tracer.record("tx1", "teleported")

    def test_unknown_tx_counted_not_raised(self):
        registry = MetricsRegistry()
        tracer = LifecycleTracer(registry=registry)
        assert tracer.record("ghost", "included") is None
        assert registry.counter("lifecycle.unknown").value == 1.0

    def test_late_event_after_close_counted(self):
        registry = MetricsRegistry()
        tracer = LifecycleTracer(registry=registry)
        tracer.begin("tx1")
        tracer.close("tx1")
        assert tracer.record("tx1", "included") is None
        assert registry.counter("lifecycle.late_events").value == 1.0

    def test_timestamps_clamped_monotonic(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1", at=10.0)
        tracer.record("tx1", "included", at=3.0)  # before admission
        trace = tracer.trace("tx1")
        assert trace.is_monotonic()
        assert trace.events[-1].at == 10.0

    def test_terminal_stage_seals_trace(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1")
        tracer.record("tx1", COMMITTED)
        assert tracer.open_count == 0
        assert tracer.closed_count == 1
        assert tracer.trace("tx1").outcome == "committed"

    def test_close_requires_terminal_stage(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1")
        with pytest.raises(ValueError, match="not terminal"):
            tracer.close("tx1", "included")

    def test_close_reports_whether_open(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1")
        assert tracer.close("tx1", DROPPED, reason="evicted") is True
        assert tracer.close("tx1", DROPPED) is False

    def test_clock_advance(self):
        tracer = LifecycleTracer()
        tracer.set_clock(5.0)
        assert tracer.advance(2.5) == 7.5
        tracer.begin("tx1")
        assert tracer.trace("tx1").started_at == 7.5
        with pytest.raises(ValueError):
            tracer.advance(-1.0)

    def test_traces_closed_first_then_open(self):
        tracer = LifecycleTracer()
        tracer.begin("open1")
        tracer.begin("done1")
        tracer.close("done1")
        assert [t.trace_id for t in tracer.traces()] == ["done1", "open1"]

    def test_clear_resets_ids_and_clock(self):
        tracer = LifecycleTracer()
        tracer.advance(9.0)
        tracer.begin("tx1")
        tracer.clear()
        assert tracer.clock == 0.0
        assert tracer.traces() == []
        assert tracer.begin("tx1").span_id == 1

    def test_stage_metrics_observed(self):
        registry = MetricsRegistry()
        tracer = LifecycleTracer(registry=registry)
        tracer.begin("tx1", at=0.0)
        tracer.record("tx1", "included", at=2.0)
        tracer.close("tx1", at=5.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["lifecycle.opened"] == 1.0
        assert snapshot["counters"][
            "lifecycle.closed{outcome=committed}"
        ] == 1.0
        assert snapshot["histograms"][
            "lifecycle.stage.included"
        ]["sum"] == 2.0
        assert snapshot["histograms"][
            "lifecycle.stage.committed"
        ]["sum"] == 3.0


class TestNoopLifecycleTracer:
    def test_everything_is_a_no_op(self):
        assert NOOP_LIFECYCLE.enabled is False
        context = NOOP_LIFECYCLE.begin("tx1")
        assert context.span_id == 0
        assert NOOP_LIFECYCLE.record("tx1", "included") is None
        assert NOOP_LIFECYCLE.close("tx1") is False
        assert NOOP_LIFECYCLE.advance(5.0) == 0.0
        assert NOOP_LIFECYCLE.traces() == []


class TestStitchedTrace:
    def test_requires_events(self):
        with pytest.raises(ValueError):
            StitchedTrace(trace_id="tx1", events=())

    def test_stage_latencies_decompose_total(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1", at=1.0)
        tracer.record("tx1", "included", at=4.0)
        tracer.close("tx1", at=9.0)
        trace = tracer.trace("tx1")
        assert trace.stage_latencies() == [
            ("included", 3.0), ("committed", 5.0),
        ]
        assert sum(l for _, l in trace.stage_latencies()) == pytest.approx(
            trace.total_latency
        )

    def test_as_dict_round_trips_outcome(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1")
        tracer.close("tx1", DROPPED)
        doc = tracer.trace("tx1").as_dict()
        assert doc["outcome"] == "dropped"
        assert [e["stage"] for e in doc["events"]] == [
            "admitted", "dropped",
        ]


class TestStitchExecutionEvents:
    def _recorder_events(self):
        recorder = FlightRecorder()
        with recorder.block(1):
            recorder.record("schedule", "tx1", executor="occ",
                            clock=0.0)
            recorder.record("start", "tx1", executor="occ", lane=0,
                            clock=0.0, cost=2.0)
            recorder.record("abort", "tx1", executor="occ", lane=0,
                            clock=2.0)
            recorder.record("retry", "tx1", executor="occ",
                            clock=2.0, round_index=1)
            recorder.record("commit", "tx1", executor="occ", lane=0,
                            clock=4.0, round_index=1)
        return recorder.events()

    def test_kinds_map_to_stages_and_commit_closes(self):
        tracer = LifecycleTracer()
        tracer.begin("tx1", at=100.0)
        stitched = stitch_execution_events(
            tracer, self._recorder_events(), at=100.0,
            cost_unit_seconds=0.5,
        )
        assert stitched == 4  # start is skipped
        trace = tracer.trace("tx1")
        assert trace.stages == (
            "admitted", "scheduled", "aborted", "retried", "committed",
        )
        assert trace.outcome == "committed"
        # Logical clock 4.0 at 0.5 s/unit lands the commit at 102.0.
        assert trace.ended_at == pytest.approx(102.0)
        assert trace.is_monotonic()

    def test_unknown_tasks_do_not_count(self):
        tracer = LifecycleTracer()  # no trace begun
        stitched = stitch_execution_events(
            tracer, self._recorder_events(), at=0.0
        )
        assert stitched == 0

    def test_disabled_tracer_short_circuits(self):
        assert stitch_execution_events(
            NOOP_LIFECYCLE, self._recorder_events(), at=0.0
        ) == 0

    def test_cost_unit_must_be_positive(self):
        with pytest.raises(ValueError):
            stitch_execution_events(
                LifecycleTracer(), [], at=0.0, cost_unit_seconds=0.0
            )


def _trace(tx_hash, *stamps):
    """A closed trace visiting (stage, at) pairs after admission at 0."""
    tracer = LifecycleTracer()
    tracer.begin(tx_hash, at=0.0)
    for stage, at in stamps:
        tracer.record(tx_hash, stage, at=at)
    return tracer.trace(tx_hash)


class TestAggregation:
    def test_breakdown_shares_sum_to_one(self):
        traces = [
            _trace("a", ("included", 1.0), ("committed", 4.0)),
            _trace("b", ("included", 2.0), ("committed", 6.0)),
        ]
        breakdown = stage_breakdown(traces)
        assert breakdown["included"].count == 2
        assert breakdown["included"].total == pytest.approx(3.0)
        assert breakdown["committed"].total == pytest.approx(7.0)
        shares = stage_shares(breakdown)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["committed"] == pytest.approx(0.7)

    def test_breakdown_percentiles_ordered(self):
        traces = [
            _trace(f"t{i}", ("committed", float(i))) for i in range(1, 21)
        ]
        stats = stage_breakdown(traces)["committed"]
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max
        assert stats.max == 20.0
        assert stats.mean == pytest.approx(10.5)

    def test_empty_breakdown_and_shares(self):
        assert stage_breakdown([]) == {}
        assert stage_shares({}) == {}

    def test_slowest_traces_orders_closed_only(self):
        fast = _trace("fast", ("committed", 1.0))
        slow = _trace("slow", ("committed", 9.0))
        open_trace = _trace("open", ("included", 99.0))
        picked = slowest_traces([fast, open_trace, slow], limit=2)
        assert [t.trace_id for t in picked] == ["slow", "fast"]
        with pytest.raises(ValueError):
            slowest_traces([], limit=0)


# Any interleaving of stage records with arbitrary timestamps must
# still yield one monotonic trace per transaction — the paper-facing
# invariant ISSUE 6 asks the property test to pin down.
_NON_TERMINAL = [s for s in STAGES if s not in TERMINAL_STAGES + ("admitted",)]


class TestTraceProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),       # tx index
                st.sampled_from(_NON_TERMINAL),              # stage
                st.floats(min_value=0.0, max_value=1e4,
                          allow_nan=False),                  # timestamp
            ),
            max_size=40,
        ),
        admissions=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=5, max_size=5,
        ),
    )
    def test_one_monotonic_trace_per_tx(self, steps, admissions):
        tracer = LifecycleTracer()
        for index, at in enumerate(admissions):
            tracer.begin(f"tx{index}", at=at)
        for index, stage, at in steps:
            tracer.record(f"tx{index}", stage, at=at)
        for index in range(5):
            tracer.close(f"tx{index}")
        traces = tracer.traces()
        assert len(traces) == 5
        assert {t.trace_id for t in traces} == {
            f"tx{i}" for i in range(5)
        }
        for trace in traces:
            assert trace.is_monotonic()
            assert trace.outcome == "committed"
            assert trace.events[0].stage == "admitted"
            # The causal chain is linear: each event's parent is the
            # previous event's span.
            for earlier, later in zip(trace.events, trace.events[1:]):
                assert later.parent_id == earlier.span_id
