"""Regression gate: deterministic snapshots, tolerance bands, and the
checked-in baseline."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    EXACT,
    SNAPSHOT_SCHEMA_VERSION,
    Tolerance,
    build_snapshot,
    compare_snapshots,
    deterministic_metrics,
    flatten_snapshot,
    load_snapshot,
    make_executor,
    tolerances_from_spec,
    write_snapshot,
)

BASELINE = (
    Path(__file__).resolve().parent / "baseline" / "regress_baseline.json"
)


@pytest.fixture(scope="module")
def small_snapshot():
    return build_snapshot(chain="ethereum", blocks=3, seed=5)


class TestSnapshotBuild:
    def test_deterministic_across_runs(self, small_snapshot):
        again = build_snapshot(chain="ethereum", blocks=3, seed=5)
        assert json.dumps(small_snapshot, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_shape(self, small_snapshot):
        assert small_snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert small_snapshot["workload"]["chain"] == "ethereum"
        for executor in ("speculative", "occ", "grouped", "dag"):
            assert executor in small_snapshot["bounds"]
        timeline = small_snapshot["timeline"]
        assert timeline["speculative"]["events"] > 0
        assert timeline["speculative"]["executions"] > 0

    def test_strict_executors_never_exceed_eq2(self, small_snapshot):
        for name in ("speculative", "speculative-informed", "grouped"):
            assert small_snapshot["bounds"][name]["eq2_exceeded"] == 0

    def test_bad_parameters_raise(self):
        with pytest.raises(ValueError, match="unknown chain"):
            build_snapshot(chain="notachain", blocks=1)
        with pytest.raises(ValueError, match="blocks"):
            build_snapshot(blocks=0)
        with pytest.raises(ValueError, match="cores"):
            build_snapshot(blocks=1, cores=0)
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("warp-drive", 2)

    def test_realtime_metrics_reduced_to_counts(self):
        snapshot = {
            "counters": {"exec.runs": 3.0},
            "gauges": {},
            "histograms": {
                "pipeline.block_seconds": {
                    "count": 3, "sum": 0.123, "min": 0.01, "max": 0.08,
                },
                "exec.wall_time{executor=occ}": {
                    "count": 2, "sum": 10.0, "min": 4.0, "max": 6.0,
                },
            },
        }
        reduced = deterministic_metrics(snapshot)
        assert reduced["histograms"]["pipeline.block_seconds"] == {
            "count": 3
        }
        # Simulated-time histograms keep their full summary.
        assert reduced["histograms"][
            "exec.wall_time{executor=occ}"
        ]["sum"] == 10.0
        assert reduced["counters"] == {"exec.runs": 3.0}


class TestTolerances:
    def test_allowed_takes_max_of_abs_and_rel(self):
        band = Tolerance(rel=0.1, abs=2.0)
        assert band.allowed(100.0) == 10.0
        assert band.allowed(5.0) == 2.0
        assert EXACT.allowed(1e9) == 0.0

    def test_spec_parsing_rejects_unknown_keys(self):
        parsed = tolerances_from_spec(
            {"timeline.*": {"rel": 0.05}, "metrics.*": {"abs": 1}}
        )
        assert parsed["timeline.*"].rel == 0.05
        assert parsed["metrics.*"].abs == 1.0
        with pytest.raises(ValueError, match="unknown keys"):
            tolerances_from_spec({"x": {"relative": 0.1}})


class TestCompare:
    BASE = {"a": {"b": 10.0, "c": "text"}, "list": [1, 2]}

    def test_flatten(self):
        assert flatten_snapshot(self.BASE) == {
            "a.b": 10.0, "a.c": "text", "list": "1,2",
        }

    def test_identical_is_ok(self):
        report = compare_snapshots(self.BASE, self.BASE)
        assert report.ok
        assert not report.regressions

    def test_drift_in_both_directions_fails(self):
        for value, status in ((12.0, "high"), (8.0, "low")):
            fresh = {"a": {"b": value, "c": "text"}, "list": [1, 2]}
            report = compare_snapshots(self.BASE, fresh)
            assert not report.ok
            (entry,) = report.regressions
            assert (entry.key, entry.status) == ("a.b", status)

    def test_tolerance_band_absorbs_drift(self):
        fresh = {"a": {"b": 10.5, "c": "text"}, "list": [1, 2]}
        report = compare_snapshots(
            self.BASE, fresh,
            tolerances={"a.*": Tolerance(rel=0.10)},
        )
        assert report.ok

    def test_missing_key_is_a_regression(self):
        fresh = {"a": {"b": 10.0}, "list": [1, 2]}
        report = compare_snapshots(self.BASE, fresh)
        statuses = {e.key: e.status for e in report.regressions}
        assert statuses == {"a.c": "missing"}

    def test_new_key_is_informational(self):
        fresh = {"a": {"b": 10.0, "c": "text", "d": 1}, "list": [1, 2]}
        report = compare_snapshots(self.BASE, fresh)
        assert report.ok
        assert [e.key for e in report.new_keys] == ["a.d"]

    def test_changed_text_fails(self):
        fresh = {"a": {"b": 10.0, "c": "other"}, "list": [1, 2]}
        report = compare_snapshots(self.BASE, fresh)
        (entry,) = report.regressions
        assert entry.status == "changed"
        assert "REGRESSION [changed] a.c" in report.render()

    def test_render_summary_line(self):
        report = compare_snapshots(self.BASE, self.BASE)
        assert report.render().endswith(
            "3 keys compared, 0 regression(s), 0 new"
        )


class TestPersistence:
    def test_round_trip(self, tmp_path, small_snapshot):
        path = tmp_path / "snap.json"
        write_snapshot(path, small_snapshot)
        assert load_snapshot(path) == json.loads(
            json.dumps(small_snapshot)
        )

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError, match="schema version"):
            load_snapshot(path)


class TestCheckedInBaseline:
    def test_fresh_run_matches_baseline(self):
        """The gate's CI contract: default workload vs the repo baseline."""
        baseline = load_snapshot(BASELINE)
        tolerances = tolerances_from_spec(baseline.pop("tolerances", {}))
        workload = baseline["workload"]
        fresh = build_snapshot(
            chain=workload["chain"],
            blocks=workload["blocks"],
            cores=workload["cores"],
            seed=workload["seed"],
            executors=workload["executors"],
        )
        report = compare_snapshots(baseline, fresh, tolerances=tolerances)
        assert report.ok, report.render()

    def test_perturbed_baseline_detected(self):
        baseline = load_snapshot(BASELINE)
        baseline.pop("tolerances", None)
        flat_timeline = baseline["timeline"]
        executor = next(iter(flat_timeline))
        fresh = json.loads(json.dumps(baseline))
        fresh["timeline"][executor]["events"] += 1
        report = compare_snapshots(baseline, fresh)
        assert not report.ok
        assert any(e.status == "high" for e in report.regressions)
