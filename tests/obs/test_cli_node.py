"""CLI contract for ``repro node run`` and ``repro monitor --follow``:
exit-code matrix (0 converged, 1 divergence/timeout, 2 usage), the
deterministic ``--snapshot-out`` artifact, and live monitor attach."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

_BASE = [
    "node", "run", "--chain", "ethereum", "--height", "2",
    "--nodes", "3", "--workload-blocks", "2", "--scale", "0.2",
    "--seed", "11",
]


def _run(capsys, *extra):
    code = main([*_BASE, *extra])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestNodeRun:
    def test_converged_run_exits_0(self, capsys):
        code, out, err = _run(capsys)
        assert code == 0
        assert "converged at height 2" in out
        assert "fingerprint" in out
        assert err == ""

    def test_per_block_stream_then_quiet(self, capsys):
        code, out, _err = _run(capsys)
        assert code == 0
        assert "[n" in out  # per-block lines name the emitting node
        code, out, _err = _run(capsys, "--quiet")
        assert code == 0
        assert "block 1:" not in out

    def test_timeout_exits_1(self, capsys):
        code, _out, err = _run(capsys, "--max-sim-time", "1", "--quiet")
        assert code == 1
        assert "did not converge" in err

    def test_bad_arguments_exit_2(self, capsys):
        code = main(["node", "run", "--chain", "no-such-chain"])
        capsys.readouterr()
        assert code == 2
        code = main([*_BASE, "--nodes", "1"])
        capsys.readouterr()
        assert code == 2
        code = main([*_BASE, "--loss", "2.0"])
        capsys.readouterr()
        assert code == 2
        code = main([*_BASE, "--rate", "bogus"])
        capsys.readouterr()
        assert code == 2

    def test_snapshot_out_is_deterministic(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert _run(capsys, "--quiet", "--snapshot-out", str(first))[0] == 0
        assert _run(capsys, "--quiet", "--snapshot-out", str(second))[0] == 0
        doc_a = json.loads(first.read_text())
        doc_b = json.loads(second.read_text())
        assert doc_a == doc_b
        assert doc_a["converged"] is True
        roots = {node["chain_root"] for node in doc_a["nodes"]}
        assert len(roots) == 1

    def test_sampling_rate_accepted(self, capsys):
        code, out, _err = _run(capsys, "--quiet", "--rate", "1/4")
        assert code == 0
        assert "rate 1/4" in out


class TestMonitorFollow:
    def test_follow_renders_at_least_three_windows(self, capsys):
        code = main([
            "monitor", "--chain", "ethereum", "--follow",
            "--net-nodes", "3", "--height", "3", "--seed", "11",
            "--scale", "0.3", "--window", "4",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.count("block(s)") >= 3
        assert "network converged" in captured.out

    def test_follow_timeout_exits_1(self, capsys):
        code = main([
            "monitor", "--chain", "ethereum", "--follow",
            "--net-nodes", "3", "--height", "5", "--seed", "11",
            "--scale", "0.2", "--max-sim-time", "1", "--once",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "did not converge" in captured.err

    def test_follow_unknown_node_exits_2(self, capsys):
        code = main([
            "monitor", "--chain", "ethereum", "--follow",
            "--net-nodes", "3", "--follow-node", "n9",
        ])
        capsys.readouterr()
        assert code == 2
