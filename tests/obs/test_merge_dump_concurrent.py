"""Concurrency tests for :meth:`MetricsRegistry.merge_dump`.

The replay fan-out merges worker dumps strictly in submission order,
but nothing in the API forbids concurrent merges — e.g. two replays
sharing one installed registry, or a future completion-order collector.
These tests hammer the registry with parallel merges whose dumps
overlap on every key (same counter names, same histogram label sets)
and assert nothing is lost or double counted.
"""

from __future__ import annotations

import threading
from collections import Counter as TallyCounter

import pytest

from repro.obs.metrics import MetricsRegistry, render_metric_key

WORKERS = 6
BLOCKS_PER_WORKER = 25


def _worker_dump(worker: int) -> list[dict[str, object]]:
    """A realistic worker registry: replay-shaped overlapping keys."""
    registry = MetricsRegistry()
    registry.counter("exec.occ.aborts").inc(10 + worker)
    registry.counter("exec.replay.blocks", backend="process").inc(
        BLOCKS_PER_WORKER
    )
    registry.gauge("exec.replay.jobs", backend="process").set(WORKERS)
    seconds = registry.histogram("exec.replay.chunk_seconds",
                                 backend="process")
    depth = registry.histogram("exec.occ.queue_depth")
    for i in range(BLOCKS_PER_WORKER):
        seconds.observe(worker + i / 100.0)
        depth.observe(float(i % 7))
    return registry.dump()


@pytest.fixture(scope="module")
def dumps():
    return [_worker_dump(worker) for worker in range(WORKERS)]


def _merge_concurrently(parent: MetricsRegistry, dumps, repeats=1):
    barrier = threading.Barrier(len(dumps) * repeats)
    errors: list[BaseException] = []

    def merge(dump) -> None:
        try:
            barrier.wait()
            parent.merge_dump(dump)
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            errors.append(exc)

    threads = [
        threading.Thread(target=merge, args=(dump,))
        for dump in dumps for _ in range(repeats)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


def test_concurrent_merges_lose_nothing(dumps):
    parent = MetricsRegistry()
    _merge_concurrently(parent, dumps)
    snapshot = parent.snapshot()
    assert snapshot["counters"]["exec.occ.aborts"] == sum(
        10 + worker for worker in range(WORKERS)
    )
    assert snapshot["counters"][
        "exec.replay.blocks{backend=process}"
    ] == WORKERS * BLOCKS_PER_WORKER
    seconds = snapshot["histograms"][
        "exec.replay.chunk_seconds{backend=process}"
    ]
    assert seconds["count"] == WORKERS * BLOCKS_PER_WORKER
    depth = snapshot["histograms"]["exec.occ.queue_depth"]
    assert depth["count"] == WORKERS * BLOCKS_PER_WORKER


def test_concurrent_merges_preserve_observation_multiset(dumps):
    """Every individual histogram observation survives, exactly once."""
    parent = MetricsRegistry()
    _merge_concurrently(parent, dumps)
    expected: TallyCounter = TallyCounter()
    for dump in dumps:
        for record in dump:
            if record["kind"] == "histogram":
                key = render_metric_key(
                    str(record["name"]),
                    tuple(record["labels"]),  # type: ignore[arg-type]
                )
                expected.update(
                    (key, value) for value in record["values"]
                )
    merged: TallyCounter = TallyCounter()
    for metric in parent.iter_metrics():
        values = getattr(metric, "_values", None)
        if values is None:
            continue
        key = render_metric_key(metric.name, metric.labels)
        merged.update((key, value) for value in values)
    assert merged == expected


def test_repeated_concurrent_merges_scale_linearly(dumps):
    """Merging each dump 3x concurrently triples counts — no races."""
    parent = MetricsRegistry()
    _merge_concurrently(parent, dumps, repeats=3)
    snapshot = parent.snapshot()
    assert snapshot["counters"][
        "exec.replay.blocks{backend=process}"
    ] == 3 * WORKERS * BLOCKS_PER_WORKER
    seconds = snapshot["histograms"][
        "exec.replay.chunk_seconds{backend=process}"
    ]
    assert seconds["count"] == 3 * WORKERS * BLOCKS_PER_WORKER
    # Gauges are last-write-wins; every dump wrote the same value.
    assert snapshot["gauges"][
        "exec.replay.jobs{backend=process}"
    ] == WORKERS


def test_merge_while_parent_observes(dumps):
    """Merges racing the parent's own observations stay consistent."""
    parent = MetricsRegistry()
    stop = threading.Event()
    observed = 0

    def observe_loop() -> None:
        nonlocal observed
        histogram = parent.histogram(
            "exec.replay.chunk_seconds", backend="process"
        )
        while not stop.is_set():
            histogram.observe(99.0)
            observed += 1

    observer = threading.Thread(target=observe_loop)
    observer.start()
    try:
        _merge_concurrently(parent, dumps)
    finally:
        stop.set()
        observer.join()
    seconds = parent.snapshot()["histograms"][
        "exec.replay.chunk_seconds{backend=process}"
    ]
    assert seconds["count"] == WORKERS * BLOCKS_PER_WORKER + observed
