"""End-to-end lifecycle pipeline: every admitted transaction yields one
stitched monotonic trace, sharded chains dispatch, capacity-bounded
pools drop, and the whole run is deterministic and noop-safe."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.lifecycle_run import run_lifecycle
from repro.workload.profiles import PROFILES_BY_NAME


def _run(chain, **kwargs):
    defaults = dict(blocks=3, seed=7, cores=4)
    defaults.update(kwargs)
    with obs.instrumented() as state:
        result = run_lifecycle(PROFILES_BY_NAME[chain], **defaults)
    return result, state


class TestEveryTransactionTraced:
    @pytest.mark.parametrize("chain", ["ethereum", "bitcoin"])
    @pytest.mark.parametrize("executor", ["dag", "occ"])
    def test_one_closed_monotonic_trace_per_admitted_tx(
        self, chain, executor
    ):
        result, _state = _run(chain, executor=executor)
        assert result.admitted > 0
        # Exactly one trace per admitted transaction, all terminal.
        assert len(result.traces) == result.admitted
        assert len({t.trace_id for t in result.traces}) == result.admitted
        assert result.open == 0
        assert result.committed == result.admitted
        assert result.dropped == 0
        for trace in result.traces:
            assert trace.is_monotonic()
            assert trace.events[0].stage == "admitted"
            assert trace.outcome == "committed"
            stages = set(trace.stages)
            assert {"propagated", "included", "consensus",
                    "scheduled"} <= stages

    def test_deterministic_under_fixed_seed(self):
        first, _ = _run("ethereum", blocks=2)
        second, _ = _run("ethereum", blocks=2)
        assert [t.as_dict() for t in first.traces] == [
            t.as_dict() for t in second.traces
        ]

    def test_stage_metrics_land_in_registry(self):
        _result, state = _run("ethereum", blocks=2)
        snapshot = state.registry.snapshot()
        assert snapshot["counters"]["lifecycle.opened"] > 0
        assert "lifecycle.stage.committed" in snapshot["histograms"]
        assert snapshot["counters"]["mempool.admitted"] > 0
        assert snapshot["counters"]["gossip.propagations"] > 0


class TestShardedChain:
    def test_zilliqa_assigns_committees_via_pbft(self):
        result, state = _run("zilliqa", blocks=2)
        profile = PROFILES_BY_NAME["zilliqa"]
        assert profile.num_shards > 0
        cross_shard = 0
        for trace in result.traces:
            # Sub-traces are joined back into the base trace, so no
            # ``#shard=`` ids survive to the result.
            assert "#" not in trace.trace_id
            assigned = [e for e in trace.events if e.stage == "assigned"]
            home = [e for e in assigned if "home_shard" not in e.attrs]
            assert len(home) == 1
            assert 0 <= home[0].attrs["shard"] < profile.num_shards
            # A transaction writing state homed on other committees
            # carries one extra assignment per remote shard (the joined
            # cross-shard sub-trace), each tagged with its home shard.
            remote = [e for e in assigned if "home_shard" in e.attrs]
            for event in remote:
                assert event.attrs["home_shard"] == \
                    home[0].attrs["shard"]
                assert event.attrs["shard"] != home[0].attrs["shard"]
            cross_shard += bool(remote)
            consensus = [
                e for e in trace.events if e.stage == "consensus"
            ]
            assert consensus[0].attrs["mechanism"] == "pbft"
        # The seeded workload spans committees for at least some txs.
        assert cross_shard > 0
        counters = state.registry.snapshot()["counters"]
        # The workload builder also dispatches while generating the
        # chain, so the counter bounds the admitted count from above.
        dispatches = sum(
            value for key, value in counters.items()
            if key.startswith("sharding.dispatch")
        )
        assert dispatches >= result.admitted

    def test_unsharded_chain_skips_assignment(self):
        result, _state = _run("ethereum", blocks=2)
        for trace in result.traces:
            assert "assigned" not in trace.stages


class TestEviction:
    def test_tiny_pool_closes_evicted_traces_as_dropped(self):
        result, state = _run("ethereum", blocks=2, mempool_weight=50)
        assert result.dropped > 0
        assert result.committed + result.dropped == result.admitted
        assert result.open == 0
        dropped = [t for t in result.traces if t.outcome == "dropped"]
        assert all(t.events[-1].attrs["reason"] == "evicted"
                   for t in dropped)
        counters = state.registry.snapshot()["counters"]
        assert counters[
            "lifecycle.closed{outcome=dropped}"
        ] == result.dropped


class TestDisabledObservability:
    def test_noop_run_produces_no_traces(self):
        obs.uninstall()
        result = run_lifecycle(
            PROFILES_BY_NAME["ethereum"], blocks=2, seed=7, cores=4
        )
        assert result.admitted > 0
        assert result.traces == ()
        assert result.committed == 0 and result.dropped == 0
        assert result.open == 0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"blocks": 0},
        {"cores": 0},
        {"nodes": 1},
        {"cost_unit_seconds": 0.0},
        {"mempool_weight": 0},
        {"executor": "warp"},
    ])
    def test_bad_parameters_raise_value_error(self, kwargs):
        defaults = dict(blocks=1, seed=0, cores=2)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            run_lifecycle(PROFILES_BY_NAME["ethereum"], **defaults)
