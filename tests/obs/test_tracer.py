"""Tracer behaviour: nesting, per-thread stacks, the global state
switch, and the no-op overhead guarantee."""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NOOP_TRACER, Tracer


class TestNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.parent_id == parent.span_id
        spans = tracer.spans()
        assert [span.name for span in spans] == ["child", "parent"]
        child_span, parent_span = spans
        assert parent_span.parent_id is None
        assert child_span.parent_id == parent_span.span_id
        assert child_span.span_id != parent_span.span_id

    def test_three_levels_and_siblings(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        by_name = {span.name: span for span in tracer.spans()}
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id
        assert by_name["a1"].parent_id == by_name["a"].span_id
        assert tracer.children_of(by_name["root"].span_id) == [
            by_name["a"], by_name["b"],
        ]

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        by_name = {span.name: span for span in tracer.spans()}
        assert by_name["inner"].duration_ns > 0
        assert by_name["outer"].duration_ns >= by_name["inner"].duration_ns

    def test_attrs_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("s", height=7) as span:
            span.set(edges=3)
        (recorded,) = tracer.spans()
        assert recorded.attrs == {"height": 7, "edges": 3}

    def test_span_recorded_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [span.name for span in tracer.spans()] == ["failing"]
        # The stack unwound: a new span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.spans()[-1].parent_id is None


class TestThreading:
    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name: str):
            with tracer.span(name):
                barrier.wait()  # both spans open simultaneously
                with tracer.span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        by_name = {span.name: span for span in tracer.spans()}
        assert by_name["t0"].parent_id is None
        assert by_name["t1"].parent_id is None
        assert by_name["t0.child"].parent_id == by_name["t0"].span_id
        assert by_name["t1.child"].parent_id == by_name["t1"].span_id


class TestGlobalState:
    def test_default_is_disabled(self):
        assert not obs.enabled()
        with obs.trace_span("ignored") as span:
            span.set(k=1)
        assert obs.get_tracer().spans() == []

    def test_instrumented_swaps_and_restores(self):
        assert not obs.enabled()
        with obs.instrumented() as state:
            assert obs.enabled()
            with obs.trace_span("visible"):
                pass
            obs.counter("hits").inc()
        assert not obs.enabled()
        assert [s.name for s in state.tracer.spans()] == ["visible"]
        assert state.registry.counter("hits").value == 1.0
        # After restore, recording is off again.
        with obs.trace_span("invisible"):
            pass
        assert state.tracer.spans()[-1].name == "visible"

    def test_instrumented_accepts_custom_backends(self):
        registry, tracer = MetricsRegistry(), Tracer()
        with obs.instrumented(registry=registry, tracer=tracer):
            obs.counter("c").inc()
            with obs.trace_span("s"):
                pass
        assert registry.counter("c").value == 1.0
        assert [s.name for s in tracer.spans()] == ["s"]

    def test_instrumented_restores_on_exception(self):
        try:
            with obs.instrumented():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not obs.enabled()

    def test_nested_instrumented_restores_outer(self):
        with obs.instrumented() as outer:
            with obs.instrumented() as inner:
                obs.counter("x").inc()
            assert obs.get_registry() is outer.registry
            assert inner.registry.counter("x").value == 1.0
            assert outer.registry.counter("x").value == 0.0


class TestNoopOverhead:
    def test_noop_tracer_records_nothing_and_reuses_context(self):
        first = NOOP_TRACER.span("a")
        second = NOOP_TRACER.span("b", k=1)
        assert first is second  # shared stateless context manager
        with first as active:
            active.set(ignored=True)
        assert NOOP_TRACER.spans() == []

    def test_disabled_instrumentation_is_cheap(self):
        """200k disabled counter/span touches must stay well under a
        generous bound — the zero-cost-when-disabled guarantee (the
        bound is loose to keep CI timing noise from flaking this)."""
        assert not obs.enabled()
        start = time.perf_counter()
        for _ in range(200_000):
            obs.counter("hot.path").inc()
        for _ in range(50_000):
            with obs.trace_span("hot.span"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0
        assert obs.get_tracer().spans() == []
