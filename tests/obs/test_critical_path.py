"""Critical-path profiler: recomputed makespans must equal reported
wall times, and strict executors must respect the Eq. 2 bound."""

from __future__ import annotations

import pytest

from repro import obs
from repro.execution.dag import account_dag, run_dag
from repro.execution.engine import SequentialExecutor, TxTask
from repro.execution.grouped import GroupedExecutor
from repro.execution.occ import OCCExecutor
from repro.execution.speculative import (
    InformedSpeculativeExecutor,
    SpeculativeExecutor,
)
from repro.obs.critical_path import (
    EQ2_STRICT_EXECUTORS,
    compare_to_bounds,
    extract_executions,
    longest_handoff_chain,
    profile_events,
    profile_recorder,
    record_timeline_metrics,
    task_conflict_profile,
)
from repro.obs.timeline import FlightRecorder
from repro.workload.account_workload import build_account_chain
from repro.workload.profiles import ETHEREUM


def _conflicting_tasks():
    """Five unit-cost tasks: a 3-chain on one location, two solo."""
    return [
        TxTask(tx_hash="a", writes=frozenset({"k"})),
        TxTask(tx_hash="b", writes=frozenset({"k"})),
        TxTask(tx_hash="c", writes=frozenset({"k"})),
        TxTask(tx_hash="d", writes=frozenset({"x"})),
        TxTask(tx_hash="e", writes=frozenset({"y"})),
    ]


@pytest.fixture(scope="module")
def eth_blocks():
    builder = build_account_chain(ETHEREUM, num_blocks=6, seed=11, scale=0.5)
    from repro.execution.engine import tasks_from_account_block

    blocks = []
    for block, executed in builder.executed_blocks:
        tasks = tasks_from_account_block(executed)
        if tasks:
            blocks.append((block.header.height, tasks, executed))
    return blocks


class TestExtractExecutions:
    def test_pairs_by_task_round_lane(self):
        recorder = FlightRecorder()
        recorder.record("start", "a", executor="e", lane=0, clock=0.0,
                        cost=1.0)
        recorder.record("abort", "a", executor="e", lane=0, clock=1.0,
                        cost=1.0)
        recorder.record("start", "a", executor="e", lane=0, clock=1.0,
                        cost=1.0, round_index=1)
        recorder.record("commit", "a", executor="e", lane=0, clock=2.0,
                        cost=1.0, round_index=1)
        executions = extract_executions(recorder.events())
        assert len(executions) == 2
        assert [e.committed for e in executions] == [False, True]
        assert executions[1].round == 1

    def test_finish_without_start_raises(self):
        recorder = FlightRecorder()
        recorder.record("commit", "ghost", executor="e", lane=0, clock=1.0)
        with pytest.raises(ValueError, match="without start"):
            extract_executions(recorder.events())

    def test_unfinished_start_dropped(self):
        recorder = FlightRecorder()
        recorder.record("start", "a", executor="e", lane=0, clock=0.0)
        assert extract_executions(recorder.events()) == []


class TestHandoffChain:
    def test_back_walks_finish_start_links(self):
        recorder = FlightRecorder()
        # Lane 0: a(0-2) -> b(2-3); lane 1: c(0-1), unlinked.
        for task, start, finish in (("a", 0.0, 2.0), ("b", 2.0, 3.0)):
            recorder.record("start", task, executor="e", lane=0,
                            clock=start, cost=finish - start)
            recorder.record("commit", task, executor="e", lane=0,
                            clock=finish, cost=finish - start)
        recorder.record("start", "c", executor="e", lane=1, clock=0.0,
                        cost=1.0)
        recorder.record("commit", "c", executor="e", lane=1, clock=1.0,
                        cost=1.0)
        chain, cost = longest_handoff_chain(
            extract_executions(recorder.events())
        )
        assert chain == ("a", "b")
        assert cost == 3.0

    def test_empty(self):
        assert longest_handoff_chain([]) == ((), 0.0)


class TestProfileEvents:
    def test_sequential_profile_is_exact(self):
        with obs.instrumented() as state:
            tasks = _conflicting_tasks()
            report = SequentialExecutor().run(tasks)
            profile = profile_events(state.recorder.events())
        assert profile.executor == "sequential"
        assert profile.makespan == report.wall_time == 5.0
        assert profile.executions == profile.committed == 5
        assert profile.aborted == 0
        assert len(profile.lanes) == 1
        assert profile.lanes[0].utilization == pytest.approx(1.0)
        # Back-to-back on one lane: the chain is the whole block.
        assert profile.critical_chain_cost == 5.0
        assert profile.rounds == 1

    def test_mixed_executor_slice_rejected(self):
        recorder = FlightRecorder()
        recorder.record("start", "a", executor="x", lane=0, clock=0.0)
        recorder.record("start", "b", executor="y", lane=0, clock=0.0)
        with pytest.raises(ValueError, match="one at a time"):
            profile_events(recorder.events())

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SpeculativeExecutor(cores=4),
            lambda: InformedSpeculativeExecutor(
                cores=4, preprocessing_cost=1.0
            ),
            lambda: OCCExecutor(cores=4),
            lambda: GroupedExecutor(cores=4),
        ],
        ids=["speculative", "speculative-informed", "occ", "grouped"],
    )
    def test_makespan_matches_reported_wall_time(self, factory, eth_blocks):
        executor = factory()
        with obs.instrumented() as state:
            for height, tasks, _executed in eth_blocks:
                with state.recorder.block(height):
                    report = executor.run(tasks)
                profile = profile_events(
                    state.recorder.events(
                        executor=executor.name, block=height
                    )
                )
                assert profile.makespan == pytest.approx(
                    report.wall_time, abs=1e-9
                )
                assert all(s.utilization <= 1.0 + 1e-9
                           for s in profile.lanes)

    def test_profile_recorder_groups_by_executor_and_block(self):
        with obs.instrumented() as state:
            tasks = _conflicting_tasks()
            for height in (1, 2):
                with state.recorder.block(height):
                    SpeculativeExecutor(cores=2).run(tasks)
                    SequentialExecutor().run(tasks)
            whole = profile_recorder(state.recorder)
            split = profile_recorder(state.recorder, per_block=True)
        assert set(whole) == {"speculative", "sequential"}
        assert len(whole["speculative"]) == 1
        assert len(split["speculative"]) == 2
        assert split["speculative"][0].blocks == (1,)


class TestBounds:
    def test_conflict_profile_counts(self):
        profile = task_conflict_profile(_conflicting_tasks())
        assert (profile.x, profile.conflicted, profile.lcc) == (5, 3, 3)
        assert profile.c == pytest.approx(0.6)
        assert profile.l == pytest.approx(0.6)

    def test_empty_block(self):
        profile = task_conflict_profile([])
        assert profile.c == profile.l == 0.0

    def test_strict_executors_stay_within_eq2(self, eth_blocks):
        for name, executor in (
            ("speculative", SpeculativeExecutor(cores=8)),
            ("speculative-informed", InformedSpeculativeExecutor(cores=8)),
            ("grouped", GroupedExecutor(cores=8)),
        ):
            assert name in EQ2_STRICT_EXECUTORS
            for _height, tasks, _executed in eth_blocks:
                comparison = compare_to_bounds(
                    executor.run(tasks), task_conflict_profile(tasks)
                )
                assert comparison.strict
                assert comparison.within_eq2, (
                    f"{name}: {comparison.measured} > {comparison.eq2}"
                )
                assert not comparison.violates

    def test_dag_may_exceed_but_never_violates(self, eth_blocks):
        for _height, tasks, executed in eth_blocks:
            dag = account_dag(executed)
            report = run_dag(dag, cores=8)
            comparison = compare_to_bounds(
                report, task_conflict_profile(tasks)
            )
            # DAG is non-strict: exceeding Eq. 2 is flagged, not failed.
            assert not comparison.strict
            assert not comparison.violates

    def test_record_timeline_metrics_emits_catalogue(self):
        with obs.instrumented() as state:
            tasks = _conflicting_tasks()
            report = SpeculativeExecutor(cores=2).run(tasks)
            profile = profile_events(
                state.recorder.events(executor="speculative")
            )
            comparison = compare_to_bounds(
                report, task_conflict_profile(tasks)
            )
            record_timeline_metrics(profile, comparison)
            snapshot = state.registry.snapshot()
        prefix = "exec.speculative.timeline"
        assert snapshot["histograms"][f"{prefix}.makespan"]["count"] == 1
        assert f"{prefix}.critical_path" in snapshot["histograms"]
        assert f"{prefix}.lane_utilization" in snapshot["histograms"]
        assert f"{prefix}.bound_gap" in snapshot["histograms"]
        assert snapshot["counters"][f"{prefix}.executions"] == float(
            profile.executions
        )
        assert snapshot["counters"][f"{prefix}.aborts"] == float(
            profile.aborted
        )
        # No violation occurred, so the violation counter was never
        # created.
        assert f"{prefix}.bound_violations" not in snapshot["counters"]

    def test_record_timeline_metrics_noop_when_disabled(self):
        profile = profile_events([])
        record_timeline_metrics(profile)  # must not raise or record
        assert not obs.enabled()
