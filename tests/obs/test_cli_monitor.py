"""CLI contract for ``repro.cli monitor``: the exit-code matrix (0 on
healthy runs, 1 on a hard SLO breach, 2 on bad arguments), the
``--once`` snapshot mode, and the ``--snapshot-out`` JSON artifact."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _run(capsys, *extra):
    code = main([
        "monitor", "--chain", "ethereum", "--blocks", "2",
        "--seed", "2020", "--cores", "2", *extra,
    ])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestMonitorCommand:
    def test_once_renders_final_window(self, capsys):
        code, out, _err = _run(capsys, "--once")
        assert code == 0
        assert "window" in out
        assert "abort-rate=" in out
        assert "throughput=" in out
        # --once prints exactly one dashboard header, not one per block.
        assert out.count("block(s)") == 1

    def test_live_mode_renders_every_block(self, capsys):
        code, out, _err = _run(capsys)
        assert code == 0
        assert out.count("block(s)") >= 2

    def test_full_rate_shows_stage_latency_table(self, capsys):
        code, out, _err = _run(capsys, "--once")
        assert code == 0
        assert "sampled stage latency" in out

    def test_hard_abort_rate_breach_exits_1(self, capsys):
        code, out, err = _run(
            capsys, "--executor", "occ", "--once",
            "--max-abort-rate", "0.01",
        )
        assert code == 1
        assert "SLO BREACH: abort-rate" in err

    def test_wall_gate_is_advisory_only(self, capsys):
        # An absurdly tight wall budget must report but never fail.
        code, out, err = _run(capsys, "--once", "--wall-p95", "1e-12")
        assert code == 0
        assert "ADVISORY" in out
        assert err == ""

    def test_snapshot_out_writes_artifact(self, tmp_path, capsys):
        snapshot = tmp_path / "monitor.json"
        code, out, _err = _run(
            capsys, "--once", "--max-abort-rate", "0.9",
            "--snapshot-out", str(snapshot),
        )
        assert code == 0
        assert f"wrote monitor snapshot to {snapshot}" in out
        document = json.loads(snapshot.read_text())
        assert set(document) == {"aggregate", "rules", "hard_breaches"}
        assert document["aggregate"]["txs"] > 0
        assert document["aggregate"]["window"] >= 1
        assert document["hard_breaches"] == []
        assert document["rules"][0]["metric"] == "abort_rate"

    def test_snapshot_records_breach(self, tmp_path, capsys):
        snapshot = tmp_path / "monitor.json"
        code, _out, _err = _run(
            capsys, "--executor", "occ", "--once",
            "--max-abort-rate", "0.01",
            "--snapshot-out", str(snapshot),
        )
        assert code == 1
        document = json.loads(snapshot.read_text())
        assert document["hard_breaches"] == ["abort-rate"]

    def test_sampled_run_keeps_exit_zero(self, capsys):
        code, out, _err = _run(
            capsys, "--once", "--rate", "1/100", "--policy", "sketch",
        )
        assert code == 0
        assert "window" in out

    @pytest.mark.parametrize("argv", [
        ["monitor", "--chain", "nope", "--once"],
        ["monitor", "--chain", "ethereum", "--rate", "0/100"],
        ["monitor", "--chain", "ethereum", "--rate", "banana"],
        ["monitor", "--chain", "ethereum", "--window", "0"],
        ["monitor", "--chain", "ethereum", "--blocks", "0"],
        ["monitor", "--chain", "ethereum", "--max-abort-rate", "-1"],
        ["monitor", "--chain", "ethereum", "--wall-p95", "0"],
    ])
    def test_bad_arguments_exit_2(self, capsys, argv):
        assert main(argv) == 2

    def test_bad_policy_choice_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["monitor", "--chain", "ethereum",
                  "--policy", "approximate"])
        assert excinfo.value.code == 2
