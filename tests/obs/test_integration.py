"""Observability must not perturb results: an instrumented pipeline run
produces identical ``BlockMetrics`` to an uninstrumented one, and the
instrumented run leaves the expected spans/counters behind."""

from __future__ import annotations

from repro import obs
from repro.workload.generator import generate_chain

CHAIN_ARGS = dict(num_blocks=6, seed=3, scale=0.5)


def _record_tuples(history):
    return [
        (
            record.height,
            record.num_transactions,
            record.metrics,
            record.gas_used,
            record.size_bytes,
        )
        for record in history.records
    ]


class TestResultsUnperturbed:
    def test_account_chain_metrics_identical(self):
        baseline = generate_chain("ethereum", **CHAIN_ARGS)
        with obs.instrumented() as state:
            instrumented = generate_chain("ethereum", **CHAIN_ARGS)
        assert _record_tuples(instrumented.history) == _record_tuples(
            baseline.history
        )
        # And the instrumented run actually recorded something.
        names = {span.name for span in state.tracer.spans()}
        assert {"pipeline.chain", "pipeline.block", "tdg.build"} <= names
        counters = state.registry.snapshot()["counters"]
        assert counters["pipeline.blocks{model=account}"] == 6.0

    def test_utxo_chain_metrics_identical(self):
        baseline = generate_chain("bitcoin", **CHAIN_ARGS)
        with obs.instrumented() as state:
            instrumented = generate_chain("bitcoin", **CHAIN_ARGS)
        assert _record_tuples(instrumented.history) == _record_tuples(
            baseline.history
        )
        counters = state.registry.snapshot()["counters"]
        assert counters["pipeline.blocks{model=utxo}"] == 6.0
        assert counters["tdg.builds{model=utxo}"] == 6.0

    def test_disabled_run_records_nothing_globally(self):
        generate_chain("ethereum", **CHAIN_ARGS)
        assert obs.get_tracer().spans() == []
        assert obs.get_registry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestParallelInstrumentation:
    """Instrumented parallel runs emit the ``pipeline.parallel.*``
    family and still match an uninstrumented serial run exactly."""

    def test_process_backend_counters_and_identical_output(self):
        baseline = generate_chain("bitcoin", **CHAIN_ARGS)
        with obs.instrumented() as state:
            parallel = generate_chain(
                "bitcoin", **CHAIN_ARGS, backend="process", jobs=2,
                chunk_size=2,
            )
        assert _record_tuples(parallel.history) == _record_tuples(
            baseline.history
        )
        snapshot = state.registry.snapshot()
        counters = snapshot["counters"]
        assert counters["pipeline.parallel.runs{backend=process}"] == 1.0
        assert counters["pipeline.parallel.blocks{backend=process}"] == 6.0
        assert counters["pipeline.parallel.chunks{backend=process}"] == 3.0
        assert snapshot["gauges"][
            "pipeline.parallel.jobs{backend=process}"
        ] == 2.0
        # One chunk-time observation per chunk.
        chunk_seconds = snapshot["histograms"][
            "pipeline.parallel.chunk_seconds{backend=process}"
        ]
        assert chunk_seconds["count"] == 3

    def test_parallel_spans_nest_under_the_run(self):
        with obs.instrumented() as state:
            generate_chain(
                "ethereum", **CHAIN_ARGS, backend="thread", jobs=2,
                chunk_size=3,
            )
        spans = state.tracer.spans()
        names = {span.name for span in spans}
        assert {"pipeline.chain", "pipeline.parallel.run",
                "pipeline.parallel.chunk"} <= names
        runs = [s for s in spans if s.name == "pipeline.parallel.run"]
        chunks = [s for s in spans if s.name == "pipeline.parallel.chunk"]
        assert len(runs) == 1
        assert {span.parent_id for span in chunks} == {runs[0].span_id}
        assert all(
            span.attrs.get("worker_seconds") is not None for span in chunks
        )

    def test_thread_backend_still_counts_per_block_families(self):
        # In-process backends keep the serial per-block counters; only
        # the process backend loses them to worker-local registries.
        with obs.instrumented() as state:
            generate_chain(
                "bitcoin", **CHAIN_ARGS, backend="thread", jobs=2
            )
        counters = state.registry.snapshot()["counters"]
        assert counters["pipeline.blocks{model=utxo}"] == 6.0
        assert counters["pipeline.parallel.runs{backend=thread}"] == 1.0

    def test_uninstrumented_parallel_run_records_nothing(self):
        generate_chain(
            "bitcoin", **CHAIN_ARGS, backend="process", jobs=2
        )
        assert obs.get_tracer().spans() == []
        assert obs.get_registry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestExecutorsUnperturbed:
    def test_reports_identical_with_and_without_instrumentation(self):
        from repro.execution.engine import tasks_from_account_block
        from repro.execution.grouped import GroupedExecutor
        from repro.execution.occ import OCCExecutor
        from repro.execution.speculative import SpeculativeExecutor

        chain = generate_chain("ethereum", **CHAIN_ARGS)
        _block, executed = chain.account_builder.executed_blocks[-1]
        tasks = tasks_from_account_block(executed)

        def run_all():
            return (
                SpeculativeExecutor(8).run(tasks),
                OCCExecutor(8).run(tasks),
                GroupedExecutor(8).run(tasks),
            )

        baseline = run_all()
        with obs.instrumented():
            instrumented = run_all()
        assert instrumented == baseline
