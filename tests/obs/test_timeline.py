"""Flight-recorder semantics: event capture, deferral, block scoping,
and the batch helpers the executors call."""

from __future__ import annotations

import pytest

from repro import obs
from repro.execution.engine import TxTask
from repro.execution.simulator import CoreSimulator
from repro.obs.timeline import (
    EVENT_KINDS,
    NOOP_RECORDER,
    QUEUE_LANE,
    FlightRecorder,
    sequential_rows,
    wave_log_rows,
    wave_rows,
)


def _tasks(n, cost=1.0):
    return [TxTask(tx_hash=f"tx{i}", cost=cost) for i in range(n)]


class TestRecorderCore:
    def test_record_and_filter(self):
        recorder = FlightRecorder()
        recorder.record("schedule", "a", executor="occ", clock=0.0)
        recorder.record(
            "start", "a", executor="occ", lane=2, clock=1.0, cost=3.0
        )
        recorder.record("commit", "a", executor="seq", clock=4.0)
        assert len(recorder) == 3
        assert [e.kind for e in recorder.events(executor="occ")] == [
            "schedule", "start",
        ]
        (start,) = recorder.events(kind="start")
        assert (start.lane, start.clock, start.cost) == (2, 1.0, 3.0)
        assert start.seq == 1
        assert start.as_dict()["task"] == "a"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            FlightRecorder().record("explode", "a", executor="occ")

    def test_block_context_stamps_and_restores(self):
        recorder = FlightRecorder()
        with recorder.block(7):
            recorder.record("start", "a", executor="e")
            with recorder.block(8):
                recorder.record("start", "b", executor="e")
            recorder.record("start", "c", executor="e")
        recorder.record("start", "d", executor="e")
        assert [e.block for e in recorder.events()] == [7, 8, 7, None]
        assert recorder.blocks() == [7, 8, None]
        assert recorder.executors() == ["e"]

    def test_clear_resets_deferred_and_materialised(self):
        recorder = FlightRecorder()
        recorder.defer(lambda: [("e", None, 0, "start", "a", 0, 0.0, 1.0)])
        assert len(recorder) == 1
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.events() == []

    def test_deferred_batches_expand_in_record_order(self):
        recorder = FlightRecorder()
        recorder.record("schedule", "a", executor="e")
        recorder.defer(lambda: [
            ("e", None, 0, "start", "a", 0, 0.0, 1.0),
            ("e", None, 0, "commit", "a", 0, 1.0, 1.0),
        ])
        recorder.record("retry", "a", executor="e")
        kinds = [e.kind for e in recorder.events()]
        assert kinds == ["schedule", "start", "commit", "retry"]
        # Reading twice must not duplicate (expansion is cached).
        assert [e.kind for e in recorder.events()] == kinds
        # Appends after a read still land after the cached prefix.
        recorder.record("commit", "b", executor="e")
        assert [e.kind for e in recorder.events()][-1] == "commit"
        assert len(recorder) == 5

    def test_noop_recorder_drops_everything(self):
        assert not NOOP_RECORDER.enabled
        NOOP_RECORDER.record("start", "a", executor="e")
        NOOP_RECORDER.extend([("e", None, 0, "start", "a", 0, 0.0, 1.0)])
        NOOP_RECORDER.defer(lambda: pytest.fail("noop expanded a thunk"))
        assert NOOP_RECORDER.events() == []
        assert len(NOOP_RECORDER) == 0

    def test_default_state_is_noop(self):
        assert obs.get_recorder() is NOOP_RECORDER

    def test_instrumented_installs_recording_recorder(self):
        with obs.instrumented() as state:
            assert obs.get_recorder() is state.recorder
            assert state.recorder.enabled
        assert obs.get_recorder() is NOOP_RECORDER


class TestWaveRows:
    def test_schedule_start_finish_per_task(self):
        recorder = FlightRecorder()
        tasks = _tasks(3)
        run = CoreSimulator(2).run_wave(tasks)
        wave_rows(recorder, "spec", tasks, run, aborted=[tasks[1]])
        events = recorder.events()
        assert len(events) == 9  # schedule + start + finish per task
        schedules = [e for e in events if e.kind == "schedule"]
        assert all(e.lane == QUEUE_LANE and e.clock == 0.0
                   for e in schedules)
        finishes = {
            e.task: e.kind for e in events if e.kind in ("commit", "abort")
        }
        assert finishes == {"tx0": "commit", "tx1": "abort", "tx2": "commit"}
        starts = {e.task: e for e in events if e.kind == "start"}
        assert starts["tx0"].clock == run.start_times["tx0"]
        assert starts["tx0"].lane == run.core_of["tx0"]

    def test_offset_shifts_all_clocks(self):
        recorder = FlightRecorder()
        tasks = _tasks(2)
        run = CoreSimulator(2).run_wave(tasks)
        wave_rows(recorder, "spec", tasks, run, offset=5.0, scheduled=False)
        events = recorder.events()
        assert all(e.kind != "schedule" for e in events)
        assert min(e.clock for e in events) == 5.0

    def test_disabled_or_empty_records_nothing(self):
        recorder = FlightRecorder()
        wave_rows(recorder, "spec", [], CoreSimulator(1).run_wave([]))
        assert len(recorder) == 0
        wave_rows(NOOP_RECORDER, "spec", _tasks(1),
                  CoreSimulator(1).run_wave(_tasks(1)))
        assert len(NOOP_RECORDER) == 0


class TestSequentialRows:
    def test_back_to_back_on_one_lane(self):
        recorder = FlightRecorder()
        tasks = _tasks(3, cost=2.0)
        sequential_rows(recorder, "seq", tasks, offset=1.0, lane=4)
        starts = recorder.events(kind="start")
        assert [e.clock for e in starts] == [1.0, 3.0, 5.0]
        assert all(e.lane == 4 for e in starts)
        commits = recorder.events(kind="commit")
        assert [e.clock for e in commits] == [3.0, 5.0, 7.0]
        assert len(recorder.events(kind="schedule")) == 3

    def test_retry_replaces_schedule(self):
        recorder = FlightRecorder()
        sequential_rows(recorder, "spec", _tasks(2), retry=True,
                        round_index=1)
        kinds = {e.kind for e in recorder.events()}
        assert "schedule" not in kinds
        retries = recorder.events(kind="retry")
        assert [e.round for e in retries] == [1, 1]
        # Retries are stamped at each task's own start, not the segment
        # start.
        assert [e.clock for e in retries] == [0.0, 1.0]


class TestWaveLogRows:
    def test_matches_per_wave_emission(self):
        tasks = _tasks(4)
        sim = CoreSimulator(2)
        run0 = sim.run_wave(tasks)
        retried = tasks[2:]
        run1 = CoreSimulator(2).run_wave(retried)
        log = [
            (tasks, run0, 0.0, retried),
            (retried, run1, run0.makespan, []),
        ]
        recorder = FlightRecorder()
        wave_log_rows(recorder, "occ", log)
        events = recorder.events()
        # Wave 0 schedules all four; wave 1 schedules nothing.
        assert len([e for e in events if e.kind == "schedule"]) == 4
        aborts = [e for e in events if e.kind == "abort"]
        assert {e.task for e in aborts} == {"tx2", "tx3"}
        retries = [e for e in events if e.kind == "retry"]
        assert all(
            e.round == 1 and e.clock == run0.makespan for e in retries
        )
        # Second-wave executions re-run on round 1 and commit.
        round1_commits = [
            e for e in events if e.kind == "commit" and e.round == 1
        ]
        assert {e.task for e in round1_commits} == {"tx2", "tx3"}

    def test_empty_log_is_noop(self):
        recorder = FlightRecorder()
        wave_log_rows(recorder, "occ", [])
        assert len(recorder) == 0
