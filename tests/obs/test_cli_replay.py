"""CLI contract for the replay fan-out wiring.

Covers ``repro.cli replay`` (table, divergence exit code, Chrome
trace), ``speedup --measured``, ``compare --measured`` and the
``lifecycle`` parallel-replay verification pass.
"""

from __future__ import annotations

import json

from repro.cli import main


class TestReplayCommand:
    def test_prints_per_engine_table_and_agrees(self, capsys):
        code = main([
            "replay", "--chain", "bitcoin", "--blocks", "3",
            "--scale", "0.1", "--backend", "thread", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        for engine in ("sequential", "speculative", "occ", "grouped",
                       "dag"):
            assert engine in out
        assert "state roots agree across 8 engine(s)" in out

    def test_engine_subset(self, capsys):
        code = main([
            "replay", "--chain", "bitcoin", "--blocks", "2",
            "--scale", "0.1", "--engines", "occ,dag",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "state roots agree across 2 engine(s)" in out
        assert "speculative-informed" not in out

    def test_unknown_engine_exits_2(self, capsys):
        code = main([
            "replay", "--chain", "bitcoin", "--blocks", "2",
            "--engines", "blockstm",
        ])
        assert code == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_unknown_chain_exits_2(self, capsys):
        code = main(["replay", "--chain", "solana", "--blocks", "2"])
        assert code == 2
        assert "unknown chain" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, capsys):
        code = main([
            "replay", "--chain", "bitcoin", "--blocks", "2",
            "--backend", "thread", "--jobs", "0",
        ])
        assert code == 2

    def test_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "replay.json"
        code = main([
            "replay", "--chain", "bitcoin", "--blocks", "3",
            "--scale", "0.1", "--backend", "process", "--jobs", "2",
            "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert events
        # The merged stream carries both engine slices and the
        # chunk-level fan-out lane.
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names
        assert "wrote" in capsys.readouterr().out


class TestSpeedupMeasured:
    def test_measured_table_renders(self, capsys):
        code = main([
            "speedup", "--chain", "bitcoin", "--blocks", "4",
            "--scale", "0.1", "--cores", "2,4", "--measured",
            "--backend", "thread", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "measured replay speed-ups" in out
        assert "state roots identical" in out
        assert "2 cores" in out and "4 cores" in out


class TestCompareMeasured:
    def test_measured_columns_render(self, capsys):
        code = main([
            "compare", "--left", "bitcoin", "--right", "bitcoin_cash",
            "--blocks", "4", "--scale", "0.1", "--measured",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "spec R" in out and "group R" in out

    def test_without_flag_layout_unchanged(self, capsys):
        code = main([
            "compare", "--left", "bitcoin", "--right", "bitcoin_cash",
            "--blocks", "4", "--scale", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "spec R" not in out


class TestLifecycleVerification:
    def test_parallel_backend_verifies_against_serial(self, capsys):
        code = main([
            "lifecycle", "--chain", "bitcoin", "--blocks", "2",
            "--scale", "0.2", "--executor", "occ",
            "--backend", "thread", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "parallel replay verification (thread backend" in out
        assert "matches the serial replay" in out

    def test_serial_backend_skips_verification(self, capsys):
        code = main([
            "lifecycle", "--chain", "bitcoin", "--blocks", "2",
            "--scale", "0.2", "--executor", "occ",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "parallel replay verification" not in out
