"""Tests for committee formation and sharded block production."""

from __future__ import annotations

import random

import pytest

from repro.account.transaction import make_account_transaction
from repro.chain.errors import ShardingError
from repro.chain.hashing import address_from_seed
from repro.sharding.committee import (
    CommitteeAssignment,
    NodeIdentity,
    shard_for_address,
)
from repro.sharding.zilliqa import ShardedChainBuilder


class TestShardForAddress:
    def test_deterministic(self):
        address = address_from_seed("someone")
        assert shard_for_address(address, 4) == shard_for_address(address, 4)

    def test_in_range(self):
        for index in range(100):
            address = address_from_seed(f"user{index}")
            assert 0 <= shard_for_address(address, 7) < 7

    def test_rejects_non_hex(self):
        with pytest.raises(ShardingError):
            shard_for_address("0xzzzz", 4)

    def test_rejects_zero_shards(self):
        with pytest.raises(ShardingError):
            shard_for_address("0xab", 0)

    def test_spreads_addresses(self):
        shards = {
            shard_for_address(address_from_seed(f"u{i}"), 4)
            for i in range(64)
        }
        assert shards == {0, 1, 2, 3}


class TestCommitteeAssignment:
    def _nodes(self, count):
        return [NodeIdentity(node_id=f"n{i}") for i in range(count)]

    def test_assignment_shapes(self):
        assignment = CommitteeAssignment(
            num_shards=3, shard_size=10, ds_size=10,
            rng=random.Random(1),
        )
        ds, shards = assignment.assign(self._nodes(45))
        assert len(ds) == 10
        assert [len(s) for s in shards] == [12, 12, 11][: len(shards)] or all(
            len(s) >= 10 for s in shards
        )

    def test_requires_enough_nodes(self):
        assignment = CommitteeAssignment(
            num_shards=2, shard_size=10, ds_size=10
        )
        with pytest.raises(ShardingError):
            assignment.assign(self._nodes(10))

    def test_no_node_in_two_committees(self):
        assignment = CommitteeAssignment(
            num_shards=2, shard_size=8, ds_size=8, rng=random.Random(2)
        )
        ds, shards = assignment.assign(self._nodes(24))
        all_ids = [n.node_id for n in ds]
        for shard in shards:
            all_ids.extend(n.node_id for n in shard)
        assert len(all_ids) == len(set(all_ids))

    def test_committee_minimums(self):
        with pytest.raises(ShardingError):
            CommitteeAssignment(num_shards=1, shard_size=3, ds_size=10)


class TestShardedChainBuilder:
    def _tx(self, sender_seed, receiver_seed, nonce=0):
        return make_account_transaction(
            sender=address_from_seed(sender_seed),
            receiver=address_from_seed(receiver_seed),
            value=1,
            nonce=nonce,
        )

    def test_block_is_shard_major_ordered(self):
        builder = ShardedChainBuilder(num_shards=4)
        txs = [self._tx(f"s{i}", f"r{i}") for i in range(40)]
        block = builder.build_tx_block(txs)
        shard_sequence = [
            microblock.shard_id
            for microblock in block.microblocks
            for _tx in microblock.transactions
        ]
        assert shard_sequence == sorted(shard_sequence)
        assert len(block) == 40

    def test_transactions_land_on_sender_shard(self):
        builder = ShardedChainBuilder(num_shards=4)
        txs = [self._tx(f"s{i}", f"r{i}") for i in range(20)]
        block = builder.build_tx_block(txs)
        for microblock in block.microblocks:
            for tx in microblock.transactions:
                assert builder.shard_of(tx.sender) == microblock.shard_id

    def test_cross_shard_contract_calls_rejected(self):
        # Find a contract whose shard differs from a sender's shard.
        contract = address_from_seed("contract-x")
        builder = ShardedChainBuilder(
            num_shards=4, contract_addresses={contract}
        )
        contract_shard = builder.shard_of(contract)
        sender_seed = next(
            f"s{i}"
            for i in range(1000)
            if builder.shard_of(address_from_seed(f"s{i}")) != contract_shard
        )
        cross = make_account_transaction(
            sender=address_from_seed(sender_seed),
            receiver=contract,
            value=0,
            nonce=0,
        )
        block = builder.build_tx_block([cross])
        assert len(block) == 0
        assert builder.rejected == [cross]

    def test_same_shard_contract_call_accepted(self):
        contract = address_from_seed("contract-y")
        builder = ShardedChainBuilder(
            num_shards=4, contract_addresses={contract}
        )
        contract_shard = builder.shard_of(contract)
        sender_seed = next(
            f"s{i}"
            for i in range(1000)
            if builder.shard_of(address_from_seed(f"s{i}")) == contract_shard
        )
        call = make_account_transaction(
            sender=address_from_seed(sender_seed),
            receiver=contract,
            value=0,
            nonce=0,
        )
        block = builder.build_tx_block([call])
        assert len(block) == 1

    def test_plain_transfers_cross_shards_freely(self):
        builder = ShardedChainBuilder(num_shards=4)
        txs = [self._tx(f"a{i}", "common-receiver") for i in range(12)]
        block = builder.build_tx_block(txs)
        assert len(block) == 12
        assert builder.rejected == []

    def test_load_balance_metric(self):
        builder = ShardedChainBuilder(num_shards=4)
        txs = [self._tx(f"s{i}", f"r{i}") for i in range(100)]
        block = builder.build_tx_block(txs)
        balance = builder.shard_load_balance(block)
        assert balance >= 1.0
        empty = builder.build_tx_block([])
        assert builder.shard_load_balance(empty) == 0.0

    def test_epochs_increment(self):
        builder = ShardedChainBuilder(num_shards=2)
        first = builder.build_tx_block([])
        second = builder.build_tx_block([])
        assert (first.epoch, second.epoch) == (0, 1)
