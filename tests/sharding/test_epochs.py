"""Tests for sharded epoch timing and the shard-scaling plateau."""

from __future__ import annotations

import random

import pytest

from repro.account.transaction import make_account_transaction
from repro.chain.hashing import address_from_seed
from repro.sharding.epochs import EpochCosts, epoch_time, shard_sweep
from repro.sharding.zilliqa import ShardedChainBuilder


def _block(num_txs, num_shards=4):
    builder = ShardedChainBuilder(num_shards=num_shards)
    txs = [
        make_account_transaction(
            sender=address_from_seed(f"s{i}"),
            receiver=address_from_seed(f"r{i}"),
            value=1,
            nonce=0,
        )
        for i in range(num_txs)
    ]
    return builder.build_tx_block(txs)


class TestEpochCosts:
    def test_validation(self):
        with pytest.raises(ValueError):
            EpochCosts(execution_time_per_tx=-1)
        with pytest.raises(ValueError):
            EpochCosts(shard_committee_size=2)
        with pytest.raises(ValueError):
            EpochCosts(execution_speedup=0)


class TestEpochTime:
    def test_components_positive(self):
        timing = epoch_time(
            _block(100), EpochCosts(), rng=random.Random(1)
        )
        assert timing.consensus > 0
        assert timing.execution > 0
        assert timing.sync > 0
        assert timing.total == pytest.approx(
            timing.consensus + timing.execution + timing.sync
        )

    def test_execution_speedup_shrinks_execution_only(self):
        slow = epoch_time(
            _block(200), EpochCosts(execution_speedup=1.0),
            rng=random.Random(2),
        )
        fast = epoch_time(
            _block(200), EpochCosts(execution_speedup=6.0),
            rng=random.Random(2),
        )
        assert fast.execution == pytest.approx(slow.execution / 6.0)
        assert fast.sync == pytest.approx(slow.sync)

    def test_empty_block(self):
        timing = epoch_time(_block(0), EpochCosts(), rng=random.Random(3))
        assert timing.execution == 0.0
        assert timing.sync == 0.0

    def test_execution_share(self):
        timing = epoch_time(_block(500), EpochCosts(), rng=random.Random(4))
        assert 0.0 < timing.execution_share() < 1.0


class TestShardSweep:
    def test_throughput_saturates(self):
        """More shards divide execution but not sync: a plateau (§II-B)."""
        results = shard_sweep(
            total_txs=20_000,
            shard_counts=[1, 2, 4, 8, 16, 64],
            costs=EpochCosts(),
        )
        throughputs = [tp for _shards, _time, tp in results]
        # Throughput grows early...
        assert throughputs[1] > throughputs[0]
        assert throughputs[2] > throughputs[1]
        # ...but with diminishing returns: the last doubling gains far
        # less than the first one.
        first_gain = throughputs[1] / throughputs[0]
        last_gain = throughputs[-1] / throughputs[-2]
        assert last_gain < first_gain
        # And the plateau is bounded by the sync term.
        costs = EpochCosts()
        sync_bound = 1.0 / costs.sync_time_per_tx
        assert throughputs[-1] < sync_bound

    def test_execution_speedup_lifts_the_curve(self):
        base = shard_sweep(
            total_txs=20_000,
            shard_counts=[4],
            costs=EpochCosts(execution_speedup=1.0),
        )
        sped = shard_sweep(
            total_txs=20_000,
            shard_counts=[4],
            costs=EpochCosts(execution_speedup=6.0),
        )
        assert sped[0][2] > base[0][2]

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_sweep(
                total_txs=-1, shard_counts=[1], costs=EpochCosts()
            )
        with pytest.raises(ValueError):
            shard_sweep(
                total_txs=10, shard_counts=[0], costs=EpochCosts()
            )
