"""Tests for popularity sampling and actor populations."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.actors import Actor, ActorKind, ActorPopulation
from repro.workload.zipf import ZipfSampler, truncated_geometric


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler.create(100, 1.0)
        total = sum(sampler.probability_of(rank) for rank in range(100))
        assert total == pytest.approx(1.0)

    def test_head_is_heavier_than_tail(self):
        sampler = ZipfSampler.create(100, 1.0)
        assert sampler.probability_of(0) > sampler.probability_of(99) * 10

    def test_zero_exponent_is_uniform(self):
        sampler = ZipfSampler.create(10, 0.0)
        for rank in range(10):
            assert sampler.probability_of(rank) == pytest.approx(0.1)

    def test_samples_within_range(self):
        sampler = ZipfSampler.create(50, 1.2)
        rng = random.Random(1)
        ranks = sampler.sample_many(rng, 1000)
        assert all(0 <= rank < 50 for rank in ranks)

    def test_empirical_skew(self):
        sampler = ZipfSampler.create(1000, 1.5)
        rng = random.Random(2)
        counts = Counter(sampler.sample_many(rng, 5000))
        assert counts[0] > counts.get(500, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler.create(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler.create(10, -1.0)
        sampler = ZipfSampler.create(5, 1.0)
        with pytest.raises(ValueError):
            sampler.probability_of(5)

    @given(
        population=st.integers(min_value=1, max_value=200),
        exponent=st.floats(min_value=0.0, max_value=3.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100)
    def test_sample_always_in_range(self, population, exponent, seed):
        sampler = ZipfSampler.create(population, exponent)
        rank = sampler.sample(random.Random(seed))
        assert 0 <= rank < population


class TestTruncatedGeometric:
    def test_bounds_respected(self):
        rng = random.Random(3)
        for _ in range(200):
            value = truncated_geometric(rng, mean=5.0, minimum=2, maximum=9)
            assert 2 <= value <= 9

    def test_mean_below_minimum_returns_minimum(self):
        rng = random.Random(0)
        assert truncated_geometric(rng, mean=1.0, minimum=3, maximum=10) == 3

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            truncated_geometric(random.Random(0), mean=5, minimum=9, maximum=2)

    def test_mean_roughly_tracks_target(self):
        rng = random.Random(4)
        samples = [
            truncated_geometric(rng, mean=6.0, minimum=3, maximum=40)
            for _ in range(3000)
        ]
        assert 4.5 < sum(samples) / len(samples) < 7.5


class TestActorPopulation:
    def _population(self):
        return ActorPopulation.build(
            chain="testchain",
            num_users=100,
            num_exchanges=3,
            num_pools=2,
            num_contracts=4,
        )

    def test_build_shapes(self):
        population = self._population()
        assert len(population.users) == 100
        assert len(population.exchanges) == 3
        assert len(population.pools) == 2
        assert len(population.contracts) == 4
        assert len(population.all_actors()) == 109

    def test_addresses_unique(self):
        population = self._population()
        addresses = [actor.address for actor in population.all_actors()]
        assert len(addresses) == len(set(addresses))

    def test_addresses_deterministic_per_chain(self):
        a = self._population()
        b = self._population()
        assert a.users[0].address == b.users[0].address
        other = ActorPopulation.build(
            chain="otherchain", num_users=1, num_exchanges=1, num_pools=1
        )
        assert other.users[0].address != a.users[0].address

    def test_sampling_kinds(self):
        population = self._population()
        rng = random.Random(5)
        assert population.sample_user(rng).kind is ActorKind.USER
        assert population.sample_exchange(rng).kind is ActorKind.EXCHANGE
        assert population.sample_pool(rng).kind is ActorKind.MINING_POOL
        assert population.sample_contract(rng).kind is ActorKind.CONTRACT

    def test_user_sampling_is_zipf_skewed(self):
        population = self._population()
        rng = random.Random(6)
        counts = Counter(
            population.sample_user(rng).name for _ in range(3000)
        )
        assert counts["user0"] > counts.get("user99", 0)

    def test_empty_exchange_list_raises(self):
        population = ActorPopulation.build(
            chain="x", num_users=1, num_exchanges=0, num_pools=0
        )
        with pytest.raises(ValueError):
            population.sample_exchange(random.Random(0))

    def test_actor_create_kind_in_address_seed(self):
        user = Actor.create(ActorKind.USER, "n", chain="c")
        pool = Actor.create(ActorKind.MINING_POOL, "n", chain="c")
        assert user.address != pool.address
