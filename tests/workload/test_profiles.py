"""Tests for the chain profiles and era interpolation."""

from __future__ import annotations

import pytest

from repro.workload.profiles import (
    ACCOUNT_PROFILES,
    ALL_PROFILES,
    BITCOIN,
    ETHEREUM,
    ETHEREUM_CLASSIC,
    UTXO_PROFILES,
    ZILLIQA,
    ChainProfile,
    Era,
    get_profile,
    interpolate_era,
)


class TestCatalogue:
    def test_seven_chains(self):
        assert len(ALL_PROFILES) == 7

    def test_table1_data_models(self):
        """Paper Table I: 4 UTXO chains, 3 account chains."""
        assert len(UTXO_PROFILES) == 4
        assert len(ACCOUNT_PROFILES) == 3

    def test_table1_smart_contract_column(self):
        with_contracts = {
            p.name for p in ALL_PROFILES if p.smart_contracts
        }
        assert with_contracts == {
            "ethereum", "ethereum_classic", "zilliqa"
        }

    def test_table1_consensus_column(self):
        assert ZILLIQA.consensus == "PoW+Sharding"
        assert all(
            p.consensus == "PoW" for p in ALL_PROFILES if p.name != "zilliqa"
        )

    def test_table1_data_source_column(self):
        assert ZILLIQA.data_source == "—"
        assert all(
            p.data_source == "BigQuery"
            for p in ALL_PROFILES
            if p.name != "zilliqa"
        )

    def test_zilliqa_is_the_only_sharded_chain(self):
        assert ZILLIQA.num_shards > 0
        assert all(
            p.num_shards == 0 for p in ALL_PROFILES if p.name != "zilliqa"
        )

    def test_get_profile(self):
        assert get_profile("bitcoin") is BITCOIN
        with pytest.raises(KeyError):
            get_profile("solana")

    def test_calibration_relationships(self):
        """§IV-C's load relationships are encoded in the late eras."""
        eth_late = ETHEREUM.eras[-1].mean_txs_per_block
        etc_late = ETHEREUM_CLASSIC.eras[-1].mean_txs_per_block
        assert eth_late >= 10 * etc_late  # order of magnitude gap
        btc_late = BITCOIN.eras[-1].mean_txs_per_block
        bch_late = get_profile("bitcoin_cash").eras[-1].mean_txs_per_block
        assert btc_late > 5 * bch_late


class TestEra:
    def test_share_budget_enforced(self):
        with pytest.raises(ValueError):
            Era(
                year=2020,
                mean_txs_per_block=10,
                num_users=10,
                exchange_deposit_share=0.6,
                exchange_withdrawal_share=0.6,
            )

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            Era(year=2020, mean_txs_per_block=-1, num_users=10)


class TestInterpolation:
    def _eras(self):
        return (
            Era(year=2016.0, mean_txs_per_block=10, num_users=100),
            Era(year=2018.0, mean_txs_per_block=110, num_users=1100),
        )

    def test_midpoint_interpolates_linearly(self):
        era = interpolate_era(self._eras(), 2017.0)
        assert era.mean_txs_per_block == pytest.approx(60.0)
        assert era.num_users == 600

    def test_clamps_before_first_and_after_last(self):
        eras = self._eras()
        assert interpolate_era(eras, 2000.0).mean_txs_per_block == 10
        assert interpolate_era(eras, 2030.0).mean_txs_per_block == 110

    def test_int_fields_stay_int(self):
        era = interpolate_era(self._eras(), 2016.77)
        assert isinstance(era.num_users, int)

    def test_empty_eras_rejected(self):
        with pytest.raises(ValueError):
            interpolate_era((), 2017.0)


class TestChainProfile:
    def test_year_of_timestamp(self):
        year = BITCOIN.year_of_timestamp(0.0)
        assert year == pytest.approx(BITCOIN.start_year)
        one_year = 365.25 * 24 * 3600
        assert BITCOIN.year_of_timestamp(one_year) == pytest.approx(
            BITCOIN.start_year + 1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ChainProfile(
                name="x",
                display_name="X",
                data_model="document",
                consensus="PoW",
                smart_contracts=False,
                data_source="—",
                start_year=2020.0,
                end_year=2021.0,
                block_interval=60.0,
                eras=(Era(year=2020, mean_txs_per_block=1, num_users=1),),
            )
        with pytest.raises(ValueError):
            ChainProfile(
                name="x",
                display_name="X",
                data_model="utxo",
                consensus="PoW",
                smart_contracts=False,
                data_source="—",
                start_year=2021.0,
                end_year=2020.0,
                block_interval=60.0,
                eras=(Era(year=2020, mean_txs_per_block=1, num_users=1),),
            )
