"""Integration tests for the UTXO and account workload builders.

These are the load-bearing tests of the substitution argument: they
assert that the synthetic chains are *valid* (every spend checks out,
every block links) and that their measured concurrency lands in the
regimes the paper reports (DESIGN.md §5).
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import analyze_account_block, analyze_utxo_ledger
from repro.utxo.utxo_set import UTXOSet
from repro.workload.account_workload import AccountWorkloadBuilder
from repro.workload.profiles import BITCOIN, ETHEREUM, get_profile
from repro.workload.utxo_workload import UTXOWorkloadBuilder


def _weighted_rate(records, metric):
    weights = [r.weight_tx for r in records]
    values = [getattr(r.metrics, metric) for r in records]
    total = sum(weights)
    return sum(v * w for v, w in zip(values, weights)) / total


class TestUTXOBuilder:
    def test_rejects_account_profile(self):
        with pytest.raises(ValueError):
            UTXOWorkloadBuilder(profile=ETHEREUM)

    def test_ledger_is_valid(self, small_bitcoin_builder):
        assert small_bitcoin_builder.ledger.verify_links()

    def test_chain_replays_against_fresh_utxo_set(
        self, small_bitcoin_builder
    ):
        """Every block re-validates from genesis on a fresh state."""
        replay = UTXOSet()
        for block in small_bitcoin_builder.ledger:
            replay.apply_block(block.transactions)
        assert len(replay) == len(small_bitcoin_builder.utxo_set)

    def test_coinbase_first_in_every_block(self, small_bitcoin_ledger):
        for block in small_bitcoin_ledger:
            assert block.transactions[0].is_coinbase
            assert not any(tx.is_coinbase for tx in block.transactions[1:])

    def test_timestamps_span_profile_years(self, small_bitcoin_builder):
        profile = small_bitcoin_builder.profile
        last = small_bitcoin_builder.ledger.tip.header.timestamp
        final_year = profile.year_of_timestamp(last)
        assert final_year > profile.start_year + 0.5 * profile.duration_years

    def test_deterministic_given_seed(self):
        a = UTXOWorkloadBuilder(profile=BITCOIN, seed=42, scale=0.02)
        a.build_chain(6)
        b = UTXOWorkloadBuilder(profile=BITCOIN, seed=42, scale=0.02)
        b.build_chain(6)
        hashes_a = [blk.block_hash for blk in a.ledger]
        hashes_b = [blk.block_hash for blk in b.ledger]
        assert hashes_a == hashes_b

    def test_different_seeds_differ(self):
        a = UTXOWorkloadBuilder(profile=BITCOIN, seed=1, scale=0.02)
        a.build_chain(4)
        b = UTXOWorkloadBuilder(profile=BITCOIN, seed=2, scale=0.02)
        b.build_chain(4)
        assert [x.block_hash for x in a.ledger] != [
            x.block_hash for x in b.ledger
        ]

    def test_conflict_regime_matches_paper(self, small_bitcoin_builder):
        """Bitcoin: low single-tx conflict, near-zero group conflict."""
        history = analyze_utxo_ledger(
            small_bitcoin_builder.ledger, name="bitcoin"
        )
        records = [r for r in history.records if r.num_transactions >= 20]
        assert records, "chain too small for regime check"
        single = _weighted_rate(records, "single_conflict_rate")
        group = _weighted_rate(records, "group_conflict_rate")
        assert 0.03 < single < 0.35
        assert group < 0.12
        assert group < single


class TestAccountBuilder:
    def test_rejects_utxo_profile(self):
        with pytest.raises(ValueError):
            AccountWorkloadBuilder(profile=BITCOIN)

    def test_ledger_is_valid(self, small_ethereum_builder):
        assert small_ethereum_builder.ledger.verify_links()

    def test_nonces_are_sequential_per_sender(self, small_ethereum_builder):
        seen: dict[str, int] = {}
        for _block, executed in small_ethereum_builder.executed_blocks:
            for item in executed:
                if item.tx.is_coinbase:
                    continue
                expected = seen.get(item.tx.sender, 0)
                assert item.tx.nonce == expected
                seen[item.tx.sender] = expected + 1

    def test_internal_transactions_produced_by_vm(
        self, small_ethereum_builder
    ):
        internal_total = sum(
            item.receipt.trace_count
            for _block, executed in small_ethereum_builder.executed_blocks
            for item in executed
        )
        assert internal_total > 0

    def test_contract_calls_touch_storage(self, small_ethereum_builder):
        writes = 0
        for _block, executed in small_ethereum_builder.executed_blocks:
            for item in executed:
                writes += len(item.receipt.storage_writes)
        assert writes > 0

    def test_conflict_regime_matches_paper(self, small_ethereum_builder):
        """Ethereum: high single-tx conflict, moderate group conflict."""
        records = []
        for block, executed in small_ethereum_builder.executed_blocks:
            record, _ = analyze_account_block(
                executed,
                height=block.height,
                timestamp=block.header.timestamp,
            )
            if record.num_transactions >= 10:
                records.append(record)
        assert records
        single = _weighted_rate(records, "single_conflict_rate")
        group = _weighted_rate(records, "group_conflict_rate")
        assert 0.4 < single < 0.95
        assert 0.1 < group < 0.7
        assert group < single

    def test_gas_weighted_rate_below_tx_weighted(
        self, small_ethereum_builder
    ):
        """§IV-A: heavy creations pull the gas-weighted rate down."""
        singles, gas_singles = [], []
        for block, executed in small_ethereum_builder.executed_blocks:
            record, _ = analyze_account_block(
                executed,
                height=block.height,
                timestamp=block.header.timestamp,
            )
            if record.num_transactions >= 10:
                singles.append(record.metrics.single_conflict_rate)
                gas_singles.append(
                    record.metrics.weighted_single_conflict_rate
                )
        assert sum(gas_singles) / len(gas_singles) < sum(singles) / len(
            singles
        )


class TestShardedBuilder:
    def test_zilliqa_blocks_are_shard_major(self, small_zilliqa_builder):
        builder = small_zilliqa_builder
        assert builder.sharding is not None
        for block, _executed in builder.executed_blocks:
            shards = [
                builder.sharding.shard_of(tx.sender)
                for tx in block.transactions
                if not tx.is_coinbase
            ]
            assert shards == sorted(shards)

    def test_no_cross_shard_contract_calls(self, small_zilliqa_builder):
        builder = small_zilliqa_builder
        contracts = builder.sharding.contract_addresses
        for _block, executed in builder.executed_blocks:
            for item in executed:
                tx = item.tx
                if tx.is_coinbase or tx.receiver not in contracts:
                    continue
                assert builder.sharding.shard_of(
                    tx.sender
                ) == builder.sharding.shard_of(tx.receiver)

    def test_zilliqa_conflict_rates_are_high(self, small_zilliqa_builder):
        """§IV-A attributes Zilliqa's high rates to its workload."""
        records = []
        for block, executed in small_zilliqa_builder.executed_blocks:
            record, _ = analyze_account_block(
                executed,
                height=block.height,
                timestamp=block.header.timestamp,
            )
            if record.num_transactions >= 4:
                records.append(record)
        assert records
        single = _weighted_rate(records, "single_conflict_rate")
        assert single > 0.45
