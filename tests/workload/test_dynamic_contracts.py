"""Dynamic-operand contract population (profiles.num_dynamic_contracts)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.workload.account_workload import AccountWorkloadBuilder
from repro.workload.profiles import ETHEREUM, get_profile


def small(num_dynamic: int) -> AccountWorkloadBuilder:
    profile = dataclasses.replace(
        ETHEREUM, num_dynamic_contracts=num_dynamic
    )
    return AccountWorkloadBuilder(profile=profile, seed=7, scale=0.05)


def test_default_profiles_have_no_dynamic_contracts():
    assert ETHEREUM.num_dynamic_contracts == 0
    assert get_profile("ethereum").num_dynamic_contracts == 0
    builder = AccountWorkloadBuilder(profile=ETHEREUM, seed=7, scale=0.05)
    assert not any(
        code_id.startswith(("toggle", "counter", "payout", "constidx"))
        for code_id in builder.registry.code_ids()
    )


def test_profile_validates_dynamic_count():
    with pytest.raises(ValueError):
        dataclasses.replace(ETHEREUM, num_dynamic_contracts=-1)
    with pytest.raises(ValueError):
        dataclasses.replace(
            ETHEREUM,
            num_dynamic_contracts=ETHEREUM.num_contracts + 1,
        )


def test_dynamic_contracts_rotate_archetypes():
    builder = small(8)
    code_ids = set(builder.registry.code_ids())
    for prefix in ("toggle", "counter", "payout", "constidx"):
        assert any(c.startswith(prefix) for c in code_ids), prefix


def test_payout_contracts_are_seeded_and_funded():
    builder = small(8)
    payouts = [
        actor.address
        for actor in builder.population.contracts
        if builder.state.account(actor.address).code_id.startswith("payout")
    ]
    assert payouts
    for address in payouts:
        account = builder.state.account(address)
        assert account.storage["payee"]
        assert account.balance > 0


def test_dynamic_contracts_replace_tail_of_population():
    builder = small(4)
    contracts = builder.population.contracts
    tail = contracts[-4:]
    for actor in tail:
        code_id = builder.state.account(actor.address).code_id
        assert code_id.startswith(
            ("toggle", "counter", "payout", "constidx")
        )
    head_code = builder.state.account(contracts[0].address).code_id
    assert not head_code.startswith(
        ("toggle", "counter", "payout", "constidx")
    )


def test_dynamic_chain_still_builds_and_validates():
    builder = small(6)
    builder.build_chain(3)
    assert builder.ledger.verify_links()
