"""System-level invariants over complete generated chains.

These are the "would a downstream user trust this?" checks: global
conservation laws, replayability, and metric consistency hold across
every block of every generated chain, for both data models and the
sharded variant.
"""

from __future__ import annotations

import pytest

from repro.account.receipts import total_gas
from repro.core.metrics import compute_block_metrics
from repro.core.tdg import account_tdg, utxo_tdg
from repro.utxo.utxo_set import UTXOSet
from repro.utxo.transaction import UTXOTransaction


class TestUTXOChainInvariants:
    def test_value_conservation_chain_wide(self, small_bitcoin_builder):
        """Total unspent value == total coinbase issuance minus fees.

        The workload uses zero fees, so the UTXO set's value must equal
        the sum of all coinbase rewards exactly.
        """
        issued = 0
        for block in small_bitcoin_builder.ledger:
            for tx in block.transactions:
                if tx.is_coinbase:
                    issued += tx.total_output_value()
        assert small_bitcoin_builder.utxo_set.total_value() == issued

    def test_no_output_spent_twice_across_chain(self, small_bitcoin_ledger):
        spent: set[str] = set()
        for block in small_bitcoin_ledger:
            for tx in block.transactions:
                for outpoint in tx.inputs:
                    key = str(outpoint)
                    assert key not in spent, "double spend across blocks"
                    spent.add(key)

    def test_every_input_has_a_known_creator(self, small_bitcoin_ledger):
        created: set[str] = set()
        for block in small_bitcoin_ledger:
            for tx in block.transactions:
                for outpoint in tx.inputs:
                    assert str(outpoint) in created
                for outpoint in tx.outpoints_created():
                    created.add(str(outpoint))

    def test_metrics_consistent_with_tdg(self, small_bitcoin_ledger):
        for block in list(small_bitcoin_ledger)[-10:]:
            tdg = utxo_tdg(block.transactions)
            metrics = compute_block_metrics(tdg)
            assert metrics.num_conflicted == tdg.num_conflicted
            assert metrics.lcc_size == tdg.lcc_size
            if tdg.num_conflicted:
                assert (
                    metrics.group_conflict_rate
                    <= metrics.single_conflict_rate + 1e-12
                )

    def test_block_sizes_accumulate(self, small_bitcoin_ledger):
        for block in small_bitcoin_ledger:
            total = sum(tx.size_bytes for tx in block.transactions)
            assert total > 0


class TestAccountChainInvariants:
    def test_supply_accounting(self, small_ethereum_builder):
        """Final supply == faucet credits + rewards - burned fees."""
        state = small_ethereum_builder.state
        burned = 0
        minted = 0
        for _block, executed in small_ethereum_builder.executed_blocks:
            for item in executed:
                if item.tx.is_coinbase:
                    minted += item.tx.value
                else:
                    burned += item.gas_used * item.tx.gas_price
        # Faucet credits are the remaining source; recompute them from
        # the identity instead of trusting any single account.
        supply = state.total_supply()
        faucet_credits = supply + burned - minted
        assert faucet_credits >= 0
        # And the identity holds exactly.
        assert supply == faucet_credits + minted - burned

    def test_gas_never_exceeds_limits(self, small_ethereum_builder):
        for _block, executed in small_ethereum_builder.executed_blocks:
            for item in executed:
                if not item.tx.is_coinbase:
                    assert item.gas_used <= item.tx.gas_limit

    def test_internal_txs_only_from_contract_calls(
        self, small_ethereum_builder
    ):
        contracts = {
            actor.address
            for actor in small_ethereum_builder.population.contracts
        }
        burst = small_ethereum_builder._burst_address
        for _block, executed in small_ethereum_builder.executed_blocks:
            for item in executed:
                if item.receipt.trace_count == 0:
                    continue
                assert (
                    item.tx.receiver in contracts
                    or item.tx.receiver == burst
                )

    def test_per_block_gas_totals(self, small_ethereum_builder):
        for _block, executed in small_ethereum_builder.executed_blocks:
            regular = [i for i in executed if not i.is_coinbase]
            assert total_gas(regular) == sum(i.gas_used for i in regular)

    def test_tdg_groups_partition_block(self, small_ethereum_builder):
        for _block, executed in small_ethereum_builder.executed_blocks[-10:]:
            tdg = account_tdg(executed)
            hashes = [h for group in tdg.groups for h in group]
            assert len(hashes) == len(set(hashes))
            regular = {i.tx_hash for i in executed if not i.is_coinbase}
            assert set(hashes) == regular


class TestShardedChainInvariants:
    def test_sharded_chain_replays_on_plain_state(
        self, small_zilliqa_builder
    ):
        """Shard-major ordering still yields valid sequential nonces."""
        from repro.account.state import WorldState
        from repro.chain.errors import ChainError

        replay = WorldState()
        failures = 0
        for _block, executed in small_zilliqa_builder.executed_blocks:
            for item in executed:
                tx = item.tx
                if tx.is_coinbase:
                    replay.credit(tx.receiver, tx.value)
                    continue
                replay.credit(tx.sender, 10**24)  # faucet equivalence
                try:
                    replay.apply_transaction(tx)
                except ChainError:
                    failures += 1
        assert failures == 0

    def test_rejected_cross_shard_never_in_blocks(
        self, small_zilliqa_builder
    ):
        sharding = small_zilliqa_builder.sharding
        assert sharding is not None
        for block, _executed in small_zilliqa_builder.executed_blocks:
            for tx in block.transactions:
                if tx.is_coinbase:
                    continue
                assert not sharding.is_cross_shard(tx)
