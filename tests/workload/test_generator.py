"""Tests for the top-level generator and the cross-chain paper findings.

The three headline findings of §IV are asserted here as relationships
between chains, on small deterministic instances:

1. UTXO-based chains have more concurrency than account-based ones;
2. group conflict <= single-tx conflict (considerably, for Ethereum);
3. chains with more transactions per block can have *lower* group
   conflict rates (Ethereum vs. Ethereum Classic).
"""

from __future__ import annotations

import pytest

from repro.workload.generator import generate_all_chains, generate_chain


def _tail_rate(history, metric, min_txs=1):
    records = [
        r for r in history.non_empty_records() if r.num_transactions >= min_txs
    ]
    tail = records[-max(1, len(records) // 3):]
    weights = [r.weight_tx for r in tail]
    values = [getattr(r.metrics, metric) for r in tail]
    return sum(v * w for v, w in zip(values, weights)) / sum(weights)


@pytest.fixture(scope="module")
def chains():
    return generate_all_chains(
        num_blocks=60,
        seed=11,
        scale=0.25,
        names=("bitcoin", "ethereum", "ethereum_classic"),
    )


class TestGenerateChain:
    def test_accepts_profile_name_or_object(self):
        from repro.workload.profiles import DOGECOIN

        by_name = generate_chain("dogecoin", num_blocks=6, seed=1)
        by_object = generate_chain(DOGECOIN, num_blocks=6, seed=1)
        assert by_name.profile is by_object.profile
        assert len(by_name.history) == 6

    def test_history_model_matches_profile(self):
        utxo = generate_chain("litecoin", num_blocks=5, seed=1)
        account = generate_chain("zilliqa", num_blocks=5, seed=1)
        assert utxo.history.data_model == "utxo"
        assert account.history.data_model == "account"
        assert account.account_builder is not None
        assert utxo.account_builder is None

    def test_unknown_chain(self):
        with pytest.raises(KeyError):
            generate_chain("tron", num_blocks=3)


class TestPaperFindings:
    def test_finding1_utxo_has_more_concurrency(self, chains):
        """Bitcoin's conflict rates sit far below Ethereum's (§IV-A)."""
        btc_single = _tail_rate(chains["bitcoin"].history,
                                "single_conflict_rate", min_txs=20)
        eth_single = _tail_rate(chains["ethereum"].history,
                                "single_conflict_rate", min_txs=5)
        assert btc_single < eth_single / 2
        btc_group = _tail_rate(chains["bitcoin"].history,
                               "group_conflict_rate", min_txs=20)
        eth_group = _tail_rate(chains["ethereum"].history,
                               "group_conflict_rate", min_txs=5)
        assert btc_group < eth_group

    def test_finding2_group_below_single_for_ethereum(self, chains):
        """§IV-B: the gap is considerable for Ethereum."""
        single = _tail_rate(chains["ethereum"].history,
                            "single_conflict_rate", min_txs=5)
        group = _tail_rate(chains["ethereum"].history,
                           "group_conflict_rate", min_txs=5)
        assert group < single
        assert single - group > 0.15

    def test_finding3_bigger_blocks_lower_group_rate(self, chains):
        """§IV-C: ETH has ~10x ETC's load but a *lower* group rate."""
        eth = chains["ethereum"].history
        etc = chains["ethereum_classic"].history
        assert (
            eth.mean_transactions_per_block()
            > 4 * etc.mean_transactions_per_block()
        )
        eth_group = _tail_rate(eth, "group_conflict_rate", min_txs=5)
        etc_group = _tail_rate(etc, "group_conflict_rate", min_txs=3)
        assert eth_group < etc_group

    def test_ethereum_speedup_headline(self, chains):
        """The paper's headline: ~6x at 8 cores from group concurrency."""
        from repro.core.speedup import group_speedup_bound

        group = _tail_rate(chains["ethereum"].history,
                           "group_conflict_rate", min_txs=5)
        speedup = group_speedup_bound(8, group)
        assert 2.5 <= speedup <= 8.0
