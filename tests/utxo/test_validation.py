"""Tests for block-level UTXO chain policy validation."""

from __future__ import annotations

import pytest

from repro.chain.errors import ValidationError
from repro.utxo.script import p2pkh_script
from repro.utxo.transaction import TxOutputSpec, make_coinbase, make_transaction
from repro.utxo.txo import COIN
from repro.utxo.utxo_set import UTXOSet
from repro.utxo.validation import (
    BITCOIN_CASH_POLICY,
    BITCOIN_POLICY,
    ChainPolicy,
    validate_block_transactions,
)


def _setup():
    utxos = UTXOSet()
    cb0 = make_coinbase(reward=50 * COIN, miner="m", height=0)
    utxos.apply_transaction(cb0)
    return utxos, cb0


class TestPolicyObjects:
    def test_bitcoin_cash_has_bigger_blocks(self):
        assert (
            BITCOIN_CASH_POLICY.max_block_bytes
            > BITCOIN_POLICY.max_block_bytes
        )

    def test_rejects_non_positive_limits(self):
        with pytest.raises(ValueError):
            ChainPolicy(name="x", max_block_bytes=0)
        with pytest.raises(ValueError):
            ChainPolicy(name="x", block_interval_seconds=0)


class TestBlockValidation:
    def test_valid_block_passes_and_leaves_set_unchanged(self):
        utxos, cb0 = _setup()
        cb1 = make_coinbase(reward=50 * COIN, miner="m", height=1)
        spend = make_transaction(
            inputs=[cb0.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="a")],
        )
        before = len(utxos)
        validate_block_transactions([cb1, spend], utxos, BITCOIN_POLICY)
        assert len(utxos) == before

    def test_first_tx_must_be_coinbase(self):
        utxos, cb0 = _setup()
        spend = make_transaction(
            inputs=[cb0.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="a")],
        )
        with pytest.raises(ValidationError):
            validate_block_transactions([spend], utxos, BITCOIN_POLICY)

    def test_misplaced_coinbase_rejected(self):
        utxos, _ = _setup()
        cb1 = make_coinbase(reward=50 * COIN, miner="m", height=1)
        cb2 = make_coinbase(reward=50 * COIN, miner="m", height=2)
        with pytest.raises(ValidationError):
            validate_block_transactions([cb1, cb2], utxos, BITCOIN_POLICY)

    def test_empty_block_rejected(self):
        utxos, _ = _setup()
        with pytest.raises(ValidationError):
            validate_block_transactions([], utxos, BITCOIN_POLICY)

    def test_oversized_block_rejected(self):
        utxos, _ = _setup()
        cb = make_coinbase(reward=50 * COIN, miner="m", height=1)
        tiny_policy = ChainPolicy(name="tiny", max_block_bytes=100)
        with pytest.raises(ValidationError):
            validate_block_transactions([cb], utxos, tiny_policy)

    def test_intra_block_spend_validates(self):
        utxos, cb0 = _setup()
        cb1 = make_coinbase(reward=50 * COIN, miner="m", height=1)
        tx1 = make_transaction(
            inputs=[cb0.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="a")],
        )
        tx2 = make_transaction(
            inputs=[tx1.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="b")],
        )
        validate_block_transactions([cb1, tx1, tx2], utxos, BITCOIN_POLICY)

    def test_script_enforcement(self):
        utxos = UTXOSet()
        cb = make_coinbase(reward=COIN, miner="m", height=0)
        utxos.apply_transaction(cb)
        locked = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[
                TxOutputSpec(
                    value=COIN, owner="alice", script=p2pkh_script("alice")
                )
            ],
        )
        utxos.apply_transaction(locked)
        policy = ChainPolicy(name="scripted", require_scripts=True)
        cb1 = make_coinbase(reward=COIN, miner="m", height=1)
        steal = make_transaction(
            inputs=[locked.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=COIN, owner="mallory")],
        )
        with pytest.raises(ValidationError):
            validate_block_transactions(
                [cb1, steal],
                utxos,
                policy,
                spenders={steal.tx_hash: "mallory"},
            )
        # The rightful owner spends fine.
        validate_block_transactions(
            [cb1, steal],
            utxos,
            policy,
            spenders={steal.tx_hash: "alice"},
        )
