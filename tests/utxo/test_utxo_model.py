"""Tests for TXOs, UTXO transactions, and the UTXO set."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.errors import DoubleSpendError, ValueConservationError
from repro.utxo.transaction import (
    TxOutputSpec,
    make_coinbase,
    make_transaction,
)
from repro.utxo.txo import COIN, OutPoint, TXO
from repro.utxo.utxo_set import UTXOSet


def _coinbase(value=50 * COIN, miner="miner", height=0):
    return make_coinbase(reward=value, miner=miner, height=height)


class TestOutPoint:
    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            OutPoint(tx_hash="ab", index=-1)

    def test_rejects_empty_hash(self):
        with pytest.raises(ValueError):
            OutPoint(tx_hash="", index=0)

    def test_str_format(self):
        assert str(OutPoint(tx_hash="ab", index=2)) == "ab:2"


class TestTXO:
    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            TXO(
                outpoint=OutPoint(tx_hash="a", index=0),
                value=-1,
                owner="x",
            )

    def test_value_in_coins(self):
        txo = TXO(
            outpoint=OutPoint(tx_hash="a", index=0),
            value=COIN // 2,
            owner="x",
        )
        assert txo.value_in_coins() == pytest.approx(0.5)


class TestMakeTransaction:
    def test_outpoints_are_contiguous_and_self_referential(self):
        tx = make_transaction(
            inputs=(),
            outputs=[
                TxOutputSpec(value=10, owner="a"),
                TxOutputSpec(value=20, owner="b"),
            ],
        )
        assert [o.outpoint.index for o in tx.outputs] == [0, 1]
        assert all(o.outpoint.tx_hash == tx.tx_hash for o in tx.outputs)

    def test_coinbase_detection(self):
        assert _coinbase().is_coinbase
        cb = _coinbase()
        spend = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=cb.outputs[0].value, owner="z")],
        )
        assert not spend.is_coinbase

    def test_nonce_differentiates_identical_transactions(self):
        a = make_transaction(
            inputs=(), outputs=[TxOutputSpec(value=1, owner="a")], nonce=1
        )
        b = make_transaction(
            inputs=(), outputs=[TxOutputSpec(value=1, owner="a")], nonce=2
        )
        assert a.tx_hash != b.tx_hash

    def test_rejects_empty_outputs(self):
        with pytest.raises(ValueError):
            make_transaction(inputs=(), outputs=[])


class TestUTXOSet:
    def _funded_set(self):
        cb = _coinbase()
        utxos = UTXOSet()
        utxos.apply_transaction(cb)
        return utxos, cb

    def test_apply_coinbase_adds_output(self):
        utxos, cb = self._funded_set()
        assert cb.outputs[0].outpoint in utxos
        assert utxos.total_value() == 50 * COIN

    def test_spend_moves_value(self):
        utxos, cb = self._funded_set()
        spend = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[
                TxOutputSpec(value=30 * COIN, owner="alice"),
                TxOutputSpec(value=20 * COIN, owner="miner"),
            ],
        )
        utxos.apply_transaction(spend)
        assert cb.outputs[0].outpoint not in utxos
        assert utxos.balance_of("alice") == 30 * COIN
        assert utxos.total_value() == 50 * COIN

    def test_double_spend_rejected(self):
        utxos, cb = self._funded_set()
        spend = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="alice")],
        )
        utxos.apply_transaction(spend)
        replay = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="bob")],
            nonce="replay",
        )
        with pytest.raises(DoubleSpendError):
            utxos.apply_transaction(replay)

    def test_same_outpoint_twice_in_one_tx_rejected(self):
        utxos, cb = self._funded_set()
        bad = make_transaction(
            inputs=[cb.outputs[0].outpoint, cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=100 * COIN, owner="alice")],
        )
        with pytest.raises(DoubleSpendError):
            utxos.apply_transaction(bad)

    def test_value_conservation_enforced(self):
        utxos, cb = self._funded_set()
        inflate = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=51 * COIN, owner="alice")],
        )
        with pytest.raises(ValueConservationError):
            utxos.apply_transaction(inflate)

    def test_fee_accounted_in_conservation(self):
        utxos, cb = self._funded_set()
        with_fee = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=49 * COIN, owner="alice")],
            fee=COIN,
        )
        utxos.apply_transaction(with_fee)
        assert utxos.total_value() == 49 * COIN

    def test_intra_block_chain_applies(self):
        utxos, cb = self._funded_set()
        tx1 = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="a")],
        )
        tx2 = make_transaction(
            inputs=[tx1.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="b")],
        )
        undo = utxos.apply_block([tx1, tx2])
        assert utxos.balance_of("b") == 50 * COIN
        utxos.revert_block(undo)
        assert utxos.balance_of("b") == 0
        assert cb.outputs[0].outpoint in utxos

    def test_apply_block_is_atomic_on_failure(self):
        utxos, cb = self._funded_set()
        tx1 = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="a")],
        )
        bad = make_transaction(
            inputs=[OutPoint(tx_hash="missing", index=0)],
            outputs=[TxOutputSpec(value=1, owner="b")],
        )
        before = utxos.total_value()
        with pytest.raises(DoubleSpendError):
            utxos.apply_block([tx1, bad])
        assert utxos.total_value() == before
        assert cb.outputs[0].outpoint in utxos

    def test_snapshot_is_independent(self):
        utxos, cb = self._funded_set()
        snap = utxos.snapshot()
        spend = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=50 * COIN, owner="a")],
        )
        utxos.apply_transaction(spend)
        assert cb.outputs[0].outpoint in snap
        assert cb.outputs[0].outpoint not in utxos

    @given(
        st.lists(
            st.integers(min_value=1, max_value=10**6), min_size=1, max_size=8
        )
    )
    def test_total_value_conserved_under_fanout(self, splits):
        """Property: fee-less fan-outs never change total value."""
        total = sum(splits)
        cb = make_coinbase(reward=total, miner="m", height=0)
        utxos = UTXOSet()
        utxos.apply_transaction(cb)
        fanout = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[
                TxOutputSpec(value=value, owner=f"user{i}")
                for i, value in enumerate(splits)
            ],
        )
        utxos.apply_transaction(fanout)
        assert utxos.total_value() == total
