"""Tests for the miniature locking-script language."""

from __future__ import annotations

import pytest

from repro.utxo.script import (
    ScriptError,
    can_spend,
    evaluate,
    multisig_script,
    p2pkh_script,
)


class TestP2PKH:
    def test_owner_can_spend(self):
        assert can_spend(p2pkh_script("alice"), "alice")

    def test_other_cannot_spend(self):
        assert not can_spend(p2pkh_script("alice"), "mallory")


class TestMultisig:
    def test_member_can_spend(self):
        script = multisig_script(1, ["a", "b", "c"])
        assert can_spend(script, "b")

    def test_non_member_cannot(self):
        script = multisig_script(1, ["a", "b"])
        assert not can_spend(script, "z")

    def test_rejects_bad_threshold(self):
        with pytest.raises(ScriptError):
            multisig_script(3, ["a", "b"])


class TestEvaluate:
    def test_empty_script_is_anyone_can_spend(self):
        assert evaluate("", "anyone").success

    def test_push_equal_verify(self):
        assert evaluate("PUSH:x PUSH:x EQUAL VERIFY PUSH:1", "s").success

    def test_verify_failure_stops_execution(self):
        result = evaluate("PUSH:0 VERIFY PUSH:1", "s")
        assert not result.success
        assert result.steps == 2

    def test_dup_and_equal(self):
        assert evaluate("PUSH:q DUP EQUAL", "s").success

    def test_top_of_stack_must_be_one(self):
        assert not evaluate("PUSH:0", "s").success

    def test_unknown_token_raises(self):
        with pytest.raises(ScriptError):
            evaluate("NOTANOP", "s")

    def test_dup_on_empty_stack_raises(self):
        with pytest.raises(ScriptError):
            evaluate("DUP", "s")

    def test_equal_needs_two_operands(self):
        with pytest.raises(ScriptError):
            evaluate("PUSH:a EQUAL", "s")

    def test_malformed_threshold_raises(self):
        with pytest.raises(ScriptError):
            evaluate("THRESHOLD:x:a,b", "s")

    def test_threshold_out_of_range_raises(self):
        with pytest.raises(ScriptError):
            evaluate("THRESHOLD:0:a", "s")

    def test_step_count(self):
        assert evaluate("PUSH:1", "s").steps == 1
