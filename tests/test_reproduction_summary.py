"""Executable summary: the paper's headline claims, certified by pytest.

Each test states one claim from the paper and verifies it on small
deterministic instances, so ``pytest tests/`` alone demonstrates the
reproduction without running the bench harness.  The full-scale
versions (with series output) live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.analysis.examples import (
    figure_1a_block,
    figure_1b_block,
    figure_6_chain,
)
from repro.core.speedup import (
    group_speedup_bound,
    speculative_speedup_exact,
)
from repro.workload.generator import generate_all_chains


@pytest.fixture(scope="module")
def survey():
    """A compact seven-chain survey shared by the claims below."""
    return generate_all_chains(num_blocks=50, seed=77, scale=0.3)


def _rate(chains, name, metric, min_txs=2):
    records = [
        r
        for r in chains[name].history.non_empty_records()
        if r.num_transactions >= min_txs
    ]
    weight = sum(r.weight_tx for r in records)
    return sum(
        getattr(r.metrics, metric) * r.weight_tx for r in records
    ) / weight


class TestHeadlineClaim1:
    """'There is more concurrency in UTXO-based blockchains than in
    account-based ones.'"""

    def test_single_rates_ordered_by_model(self, survey):
        utxo = ("bitcoin", "bitcoin_cash", "litecoin", "dogecoin")
        account = ("ethereum", "ethereum_classic", "zilliqa")
        worst_utxo = max(
            _rate(survey, name, "single_conflict_rate") for name in utxo
        )
        best_account = min(
            _rate(survey, name, "single_conflict_rate") for name in account
        )
        assert worst_utxo < best_account

    def test_bitcoin_vs_ethereum_factors(self, survey):
        """'in Bitcoin ... around 13% whereas in Ethereum ... close to
        80%' (late-history: ~15% vs ~60%)."""
        bitcoin = _rate(survey, "bitcoin", "single_conflict_rate", min_txs=20)
        ethereum = _rate(survey, "ethereum", "single_conflict_rate",
                         min_txs=5)
        assert bitcoin < 0.35
        assert ethereum > 0.45
        assert ethereum > 3 * bitcoin


class TestHeadlineClaim2:
    """'The group conflict rate is lower than the single-transaction
    conflict rate ... the difference is considerable.'"""

    def test_ethereum_gap(self, survey):
        single = _rate(survey, "ethereum", "single_conflict_rate", min_txs=5)
        group = _rate(survey, "ethereum", "group_conflict_rate", min_txs=5)
        assert group < single
        assert single - group > 0.15


class TestHeadlineClaim3:
    """'Blockchains with more transactions per block often have a lower
    group conflict rate.'"""

    def test_ethereum_vs_classic(self, survey):
        eth = survey["ethereum"].history
        etc = survey["ethereum_classic"].history
        assert (
            eth.mean_transactions_per_block()
            > 3 * etc.mean_transactions_per_block()
        )
        assert _rate(survey, "ethereum", "group_conflict_rate", 5) < _rate(
            survey, "ethereum_classic", "group_conflict_rate", 2
        )

    def test_bitcoin_vs_bitcoin_cash(self, survey):
        btc = survey["bitcoin"].history
        bch = survey["bitcoin_cash"].history
        assert (
            btc.mean_transactions_per_block()
            > 2 * bch.mean_transactions_per_block()
        )
        assert _rate(
            survey, "bitcoin_cash", "single_conflict_rate", 5
        ) > _rate(survey, "bitcoin", "single_conflict_rate", 20)


class TestHeadlineClaim4:
    """'The model estimates up to 6x speed-ups in Ethereum using 8
    cores' — and the worked examples behind it."""

    def test_group_speedup_regime(self, survey):
        group = _rate(survey, "ethereum", "group_conflict_rate", min_txs=5)
        speedup = group_speedup_bound(8, group)
        assert 2.0 < speedup <= 8.0

    def test_worked_examples_exact(self):
        a = figure_1a_block()
        assert a.metrics.single_conflict_rate == pytest.approx(0.4)
        assert speculative_speedup_exact(5, 8, 0.4) == pytest.approx(5 / 3)

        b = figure_1b_block()
        assert b.single_conflict_rate_with_coinbase == pytest.approx(0.875)
        assert speculative_speedup_exact(16, 16, 0.875) == pytest.approx(
            16 / 15
        )

        transactions, tdg = figure_6_chain()
        assert len(transactions) == 18 and tdg.lcc_size == 18

    def test_speculation_can_lose(self):
        """'the speedup becomes smaller than 1, which means that
        performance becomes worse.'"""
        assert speculative_speedup_exact(16, 4, 0.875) < 1.0
