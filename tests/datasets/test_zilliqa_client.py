"""Tests for the simulated Zilliqa SDK client (§III-B's collection path)."""

from __future__ import annotations

import pytest

from repro.datasets.queries import query_account_conflicts
from repro.datasets.zilliqa_client import (
    RPCError,
    SimulatedZilliqaNode,
    ZilliqaCollector,
)


@pytest.fixture(scope="module")
def node(small_zilliqa_builder):
    return SimulatedZilliqaNode(
        executed_blocks=small_zilliqa_builder.executed_blocks,
        requests_per_second=4.0,
    )


# module-scoped fixture needs the session builder re-exported
@pytest.fixture(scope="module")
def small_zilliqa_builder():
    from repro.workload.account_workload import build_account_chain
    from repro.workload.profiles import ZILLIQA

    return build_account_chain(ZILLIQA, num_blocks=12, seed=7, scale=1.0)


class TestRPC:
    def test_get_num_tx_blocks(self, node):
        assert node.get_num_tx_blocks() == 12

    def test_block_hash_listing(self, node, small_zilliqa_builder):
        hashes = node.get_transactions_for_tx_block(3)
        block, _ = small_zilliqa_builder.executed_blocks[3]
        assert hashes == [tx.tx_hash for tx in block.transactions]

    def test_block_out_of_range(self, node):
        with pytest.raises(RPCError):
            node.get_transactions_for_tx_block(99)

    def test_get_transaction_detail(self, node, small_zilliqa_builder):
        block, executed = small_zilliqa_builder.executed_blocks[0]
        detail = node.get_transaction(executed[0].tx_hash)
        assert detail["blockNumber"] == 0
        assert detail["senderAddress"] == executed[0].tx.sender

    def test_unknown_transaction(self, node):
        with pytest.raises(RPCError):
            node.get_transaction("missing")

    def test_rate_limit_advances_clock(self, small_zilliqa_builder):
        node = SimulatedZilliqaNode(
            executed_blocks=small_zilliqa_builder.executed_blocks,
            requests_per_second=4.0,
        )
        node.get_num_tx_blocks()
        node.get_num_tx_blocks()
        assert node.clock.now == pytest.approx(0.5)


class TestCollector:
    def test_two_phase_collection(self, small_zilliqa_builder):
        node = SimulatedZilliqaNode(
            executed_blocks=small_zilliqa_builder.executed_blocks
        )
        collector = ZilliqaCollector(node=node)
        store = collector.collect()
        total_txs = sum(
            len(block.transactions)
            for block, _ in small_zilliqa_builder.executed_blocks
        )
        assert store.count("account_transactions") == total_txs
        assert store.count("blocks") == 12
        # 1 (count) + 12 (listings) + one per transaction.
        assert node.request_count == 1 + 12 + total_txs
        assert collector.estimated_duration() == pytest.approx(
            node.request_count / 4.0
        )

    def test_collected_store_is_queryable(self, small_zilliqa_builder):
        node = SimulatedZilliqaNode(
            executed_blocks=small_zilliqa_builder.executed_blocks
        )
        store = ZilliqaCollector(node=node).collect()
        rows = query_account_conflicts(store)
        assert rows, "collected dataset should yield per-block metrics"
        for row in rows:
            assert 0.0 <= row.single_conflict_rate <= 1.0

    def test_requests_per_second_validation(self, small_zilliqa_builder):
        with pytest.raises(ValueError):
            SimulatedZilliqaNode(
                executed_blocks=small_zilliqa_builder.executed_blocks,
                requests_per_second=0.0,
            )
