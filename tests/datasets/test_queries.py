"""Tests for the BigQuery-equivalent query layer.

The key assertion: the faithful UDF port (process_graph, paper Figs.
2-3) produces *identical* per-block numbers to the core TDG pipeline on
full synthetic chains — the reproduction's query layer and library
layer agree exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.errors import DatasetError
from repro.core.pipeline import analyze_account_block, analyze_utxo_block
from repro.datasets.export import export_account_blocks, export_utxo_ledger
from repro.datasets.queries import (
    process_graph,
    query_account_conflicts,
    query_utxo_conflicts,
)


class TestProcessGraphUDF:
    def test_simple_chain(self):
        # t2 spends t1's output; t3 spends something external.
        txs = ["t1", "t2", "t3"]
        spent = ["old", "t1", "external"]
        num, conflicted, lcc = process_graph(txs, spent)
        assert num == 3
        assert conflicted == 2
        assert lcc == 2

    def test_no_conflicts(self):
        num, conflicted, lcc = process_graph(
            ["a", "b"], ["x", "y"]
        )
        assert (num, conflicted, lcc) == (2, 0, 1)

    def test_multi_input_transaction_counted_once(self):
        # t2 has two inputs, both created by t1.
        txs = ["t1", "t2", "t2"]
        spent = ["old", "t1", "t1"]
        num, conflicted, lcc = process_graph(txs, spent)
        assert num == 2
        assert conflicted == 2
        assert lcc == 2

    def test_long_chain_single_component(self):
        txs = [f"t{i}" for i in range(10)]
        spent = ["old"] + [f"t{i}" for i in range(9)]
        num, conflicted, lcc = process_graph(txs, spent)
        assert (num, conflicted, lcc) == (10, 10, 10)

    def test_parallel_array_mismatch(self):
        with pytest.raises(DatasetError):
            process_graph(["a"], [])

    def test_empty_block(self):
        assert process_graph([], []) == (0, 0, 0)

    @settings(max_examples=100)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=30,
        )
    )
    def test_udf_agrees_with_library_tdg(self, pairs):
        """Property: the UDF port and utxo_tdg_from_arrays always agree."""
        from repro.core.tdg import utxo_tdg_from_arrays

        txs = [f"t{spender}" for spender, _ in pairs]
        spent = [f"t{creator}" for _, creator in pairs]
        num, conflicted, lcc = process_graph(txs, spent)
        tdg = utxo_tdg_from_arrays(txs, txs, spent)
        assert tdg.num_transactions == num
        assert tdg.num_conflicted == conflicted
        assert tdg.lcc_size == max(lcc, 1 if num else 0)


class TestQueryEquivalence:
    def test_utxo_query_matches_pipeline(self, small_bitcoin_ledger):
        store = export_utxo_ledger(small_bitcoin_ledger, chain="bitcoin")
        rows = {
            row.block_number: row
            for row in query_utxo_conflicts(store)
        }
        for block in small_bitcoin_ledger:
            record, tdg = analyze_utxo_block(
                block.transactions,
                height=block.height,
                timestamp=block.header.timestamp,
            )
            row = rows.get(block.height)
            if row is None:
                # Coinbase-only blocks have no input rows at all.
                assert record.num_transactions == 0
                continue
            assert row.num_transactions == tdg.num_transactions
            assert row.num_conflict_txs == tdg.num_conflicted
            assert row.max_lcc_size == tdg.lcc_size

    def test_account_query_matches_pipeline(self, small_ethereum_builder):
        store = export_account_blocks(
            small_ethereum_builder.executed_blocks, chain="ethereum"
        )
        rows = {
            row.block_number: row
            for row in query_account_conflicts(store)
        }
        for block, executed in small_ethereum_builder.executed_blocks:
            record, tdg = analyze_account_block(
                executed,
                height=block.height,
                timestamp=block.header.timestamp,
            )
            row = rows[block.height]
            assert row.num_transactions == tdg.num_transactions
            assert row.num_conflict_txs == tdg.num_conflicted
            assert row.max_lcc_size == tdg.lcc_size

    def test_query_row_rates(self, small_ethereum_builder):
        store = export_account_blocks(
            small_ethereum_builder.executed_blocks, chain="ethereum"
        )
        for row in query_account_conflicts(store):
            assert 0.0 <= row.single_conflict_rate <= 1.0
            assert 0.0 <= row.group_conflict_rate <= 1.0
