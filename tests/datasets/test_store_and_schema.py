"""Tests for dataset schemas, the store, and CSV round-tripping."""

from __future__ import annotations

import pytest

from repro.chain.errors import DatasetError
from repro.datasets.schema import (
    AccountTransactionRow,
    BlockRow,
    UTXOInputRow,
    row_from_dict,
    row_to_dict,
)
from repro.datasets.store import DatasetStore


def _input_row(block=1, spender="s", spent="c"):
    return UTXOInputRow(
        block_number=block, spending_tx_hash=spender, spent_tx_hash=spent
    )


class TestSchemaRoundTrip:
    def test_row_to_dict(self):
        row = _input_row()
        assert row_to_dict(row) == {
            "block_number": 1,
            "spending_tx_hash": "s",
            "spent_tx_hash": "c",
        }

    def test_row_from_dict_parses_types(self):
        row = row_from_dict(
            AccountTransactionRow,
            {
                "block_number": "7",
                "tx_hash": "h",
                "from_address": "a",
                "to_address": "b",
                "value": "123",
                "gas_used": "21000",
                "gas_price": "1",
                "is_coinbase": "False",
            },
        )
        assert row.block_number == 7
        assert row.value == 123
        assert row.is_coinbase is False

    def test_bool_parsing_variants(self):
        for raw, expected in [("True", True), ("1", True), ("false", False)]:
            row = row_from_dict(
                BlockRow,
                {
                    "block_number": "0",
                    "timestamp": "1.5",
                    "miner": "m",
                    "transaction_count": "3",
                },
            )
            assert row.timestamp == pytest.approx(1.5)


class TestDatasetStore:
    def test_insert_and_scan(self):
        store = DatasetStore(chain="test")
        store.insert("utxo_inputs", [_input_row(), _input_row(block=2)])
        assert store.count("utxo_inputs") == 2
        filtered = store.scan(
            "utxo_inputs", where=lambda row: row.block_number == 2
        )
        assert len(filtered) == 1

    def test_schema_enforced(self):
        store = DatasetStore(chain="test")
        with pytest.raises(DatasetError):
            store.insert("utxo_inputs", [object()])

    def test_unknown_table(self):
        store = DatasetStore(chain="test")
        with pytest.raises(DatasetError):
            store.insert("nonsense", [])

    def test_group_by_block_sorted(self):
        store = DatasetStore(chain="test")
        store.insert(
            "utxo_inputs",
            [_input_row(block=5), _input_row(block=1), _input_row(block=5)],
        )
        grouped = store.group_by_block("utxo_inputs")
        assert list(grouped) == [1, 5]
        assert len(grouped[5]) == 2

    def test_csv_round_trip(self, tmp_path):
        store = DatasetStore(chain="test")
        store.insert("utxo_inputs", [_input_row()])
        store.insert(
            "blocks",
            [
                BlockRow(
                    block_number=0,
                    timestamp=1.25,
                    miner="m",
                    transaction_count=2,
                )
            ],
        )
        written = store.export_csv(tmp_path)
        assert len(written) == 2
        loaded = DatasetStore.import_csv("test", tmp_path)
        assert loaded.count("utxo_inputs") == 1
        assert loaded.count("blocks") == 1
        assert loaded.scan("blocks")[0].timestamp == pytest.approx(1.25)

    def test_import_ignores_missing_tables(self, tmp_path):
        loaded = DatasetStore.import_csv("test", tmp_path)
        assert loaded.count("blocks") == 0
