"""Tests for receipts, TDG edge extraction, and the gas schedule."""

from __future__ import annotations

import pytest

from repro.account.gas import (
    DEFAULT_GAS_SCHEDULE,
    GasSchedule,
    block_gas_limit_for_year,
)
from repro.account.receipts import ExecutedTransaction, Receipt, total_gas
from repro.account.transaction import (
    NULL_ADDRESS,
    AccountTransaction,
    InternalTransaction,
    make_account_transaction,
    make_coinbase_transaction,
)


def _executed(sender="0xa", receiver="0xb", internals=(), created=""):
    tx = make_account_transaction(
        sender=sender, receiver=receiver, value=1, nonce=0
    )
    receipt = Receipt(
        tx_hash=tx.tx_hash,
        success=True,
        gas_used=21_000,
        internal_transactions=tuple(internals),
        created_contract=created,
    )
    return ExecutedTransaction(tx=tx, receipt=receipt)


class TestGasSchedule:
    def test_intrinsic_transfer(self):
        assert DEFAULT_GAS_SCHEDULE.intrinsic_gas(
            is_create=False, data_length=0
        ) == 21_000

    def test_intrinsic_create_is_heavier(self):
        create = DEFAULT_GAS_SCHEDULE.intrinsic_gas(
            is_create=True, data_length=100
        )
        call = DEFAULT_GAS_SCHEDULE.intrinsic_gas(
            is_create=False, data_length=100
        )
        assert create > call

    def test_data_bytes_charged(self):
        schedule = GasSchedule()
        assert (
            schedule.intrinsic_gas(is_create=False, data_length=10)
            == 21_000 + 680
        )

    def test_block_gas_limit_interpolation(self):
        assert block_gas_limit_for_year(2015) == 4_000_000
        assert block_gas_limit_for_year(2017) == 6_700_000
        assert block_gas_limit_for_year(2025) == 10_000_000


class TestInternalTransaction:
    def test_depth_starts_at_one(self):
        with pytest.raises(ValueError):
            InternalTransaction(sender="a", receiver="b", depth=0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            InternalTransaction(sender="a", receiver="b", value=-1)


class TestReceipts:
    def test_receipt_must_match_transaction(self):
        tx = make_account_transaction(
            sender="0xa", receiver="0xb", value=1, nonce=0
        )
        receipt = Receipt(tx_hash="other", success=True, gas_used=0)
        with pytest.raises(ValueError):
            ExecutedTransaction(tx=tx, receipt=receipt)

    def test_edges_regular_only(self):
        item = _executed()
        assert item.edges() == [("0xa", "0xb")]

    def test_edges_include_internals(self):
        internals = [
            InternalTransaction(sender="0xb", receiver="0xc", depth=1),
            InternalTransaction(sender="0xc", receiver="0xd", depth=2),
        ]
        item = _executed(internals=internals)
        assert item.edges() == [
            ("0xa", "0xb"),
            ("0xb", "0xc"),
            ("0xc", "0xd"),
        ]

    def test_coinbase_contributes_no_edges(self):
        cb = make_coinbase_transaction(miner="0xm", reward=1, height=0)
        item = ExecutedTransaction(
            tx=cb,
            receipt=Receipt(tx_hash=cb.tx_hash, success=True, gas_used=0),
        )
        assert item.edges() == []

    def test_creation_edge_uses_created_address(self):
        tx = make_account_transaction(
            sender="0xa",
            receiver=NULL_ADDRESS,
            value=0,
            nonce=0,
            gas_limit=100_000,
        )
        receipt = Receipt(
            tx_hash=tx.tx_hash,
            success=True,
            gas_used=85_000,
            created_contract="0xnew",
        )
        item = ExecutedTransaction(tx=tx, receipt=receipt)
        assert item.edges() == [("0xa", "0xnew")]

    def test_touched_addresses(self):
        internals = [
            InternalTransaction(sender="0xb", receiver="0xc", depth=1)
        ]
        item = _executed(internals=internals)
        assert item.receipt.touched_addresses(item.tx) == {
            "0xa",
            "0xb",
            "0xc",
        }

    def test_total_gas(self):
        items = [_executed(), _executed(sender="0xz")]
        assert total_gas(items) == 42_000


class TestTransactionValidation:
    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            AccountTransaction(
                sender="a",
                receiver="b",
                value=-1,
                nonce=0,
                tx_hash="h",
            )

    def test_creation_detection(self):
        tx = make_account_transaction(
            sender="0xa", receiver=NULL_ADDRESS, value=0, nonce=0
        )
        assert tx.is_contract_creation
        cb = make_coinbase_transaction(miner="0xa", reward=0, height=0)
        assert not cb.is_contract_creation
