"""Tests for the authenticated state trie."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.account.state import WorldState
from repro.account.trie import EMPTY_ROOT, StateTrie, state_root

keys = st.text(
    alphabet="abcdefghij0123456789:", min_size=1, max_size=20
)
values = st.text(min_size=0, max_size=10)


class TestBasicOperations:
    def test_get_put_roundtrip(self):
        trie = StateTrie()
        trie.put("balance:0xa", "100")
        assert trie.get("balance:0xa") == "100"
        assert trie.get("balance:0xb") is None
        assert len(trie) == 1

    def test_update_overwrites(self):
        trie = StateTrie()
        trie.put("k", "1")
        trie.put("k", "2")
        assert trie.get("k") == "2"
        assert len(trie) == 1

    def test_delete(self):
        trie = StateTrie()
        trie.put("k", "1")
        assert trie.delete("k")
        assert trie.get("k") is None
        assert len(trie) == 0
        assert not trie.delete("k")

    def test_empty_root_constant(self):
        assert StateTrie().root == EMPTY_ROOT

    def test_delete_restores_previous_root(self):
        trie = StateTrie()
        trie.put("a", "1")
        root_one = trie.root
        trie.put("b", "2")
        trie.delete("b")
        assert trie.root == root_one


class TestAuthenticationProperties:
    def test_root_is_order_independent(self):
        a = StateTrie()
        b = StateTrie()
        entries = [("k1", "v1"), ("k2", "v2"), ("k3", "v3")]
        for key, value in entries:
            a.put(key, value)
        for key, value in reversed(entries):
            b.put(key, value)
        assert a.root == b.root

    def test_root_changes_with_any_value(self):
        trie = StateTrie()
        trie.put("k1", "v1")
        trie.put("k2", "v2")
        baseline = trie.root
        trie.put("k2", "tampered")
        assert trie.root != baseline

    def test_root_changes_with_extra_key(self):
        trie = StateTrie()
        trie.put("k1", "v1")
        baseline = trie.root
        trie.put("k2", "v2")
        assert trie.root != baseline

    @given(st.dictionaries(keys, values, min_size=0, max_size=30))
    @settings(max_examples=50)
    def test_root_is_content_function(self, contents):
        """Property: equal contents => equal root, any insertion order."""
        import random as _random

        items = list(contents.items())
        a = StateTrie()
        for key, value in items:
            a.put(key, value)
        shuffled = list(items)
        _random.Random(1).shuffle(shuffled)
        b = StateTrie()
        for key, value in shuffled:
            b.put(key, value)
        assert a.root == b.root
        assert len(a) == len(contents)


class TestProofs:
    def test_proof_verifies(self):
        trie = StateTrie()
        for index in range(20):
            trie.put(f"key{index}", f"value{index}")
        proof = trie.prove("key7")
        assert proof.value == "value7"
        assert StateTrie.verify_proof(proof, trie.root)

    def test_proof_fails_on_wrong_root(self):
        trie = StateTrie()
        trie.put("a", "1")
        trie.put("b", "2")
        proof = trie.prove("a")
        other = StateTrie()
        other.put("a", "1")
        other.put("b", "DIFFERENT")
        assert not StateTrie.verify_proof(proof, other.root)

    def test_tampered_value_fails(self):
        from dataclasses import replace

        trie = StateTrie()
        trie.put("a", "1")
        trie.put("b", "2")
        proof = replace(trie.prove("a"), value="999")
        assert not StateTrie.verify_proof(proof, trie.root)

    def test_missing_key_raises(self):
        trie = StateTrie()
        trie.put("a", "1")
        with pytest.raises(KeyError):
            trie.prove("missing")

    @given(st.dictionaries(keys, values, min_size=1, max_size=15))
    @settings(max_examples=30)
    def test_all_proofs_verify(self, contents):
        trie = StateTrie()
        for key, value in contents.items():
            trie.put(key, value)
        root = trie.root
        for key in contents:
            assert StateTrie.verify_proof(trie.prove(key), root)


class TestStateRoot:
    def test_state_root_deterministic(self):
        def build():
            state = WorldState()
            state.credit("0xa", 100)
            state.credit("0xb", 50)
            state.account("0xc").code_id = "token"
            state.account("0xc").storage["k"] = "v"
            return state

        assert state_root(build()) == state_root(build())

    def test_state_root_tracks_changes(self):
        state = WorldState()
        state.credit("0xa", 100)
        before = state_root(state)
        state.credit("0xa", 1)
        assert state_root(state) != before

    def test_state_root_on_executed_chain(self, small_ethereum_builder):
        """The synthetic chain's final state has a stable commitment."""
        root = state_root(small_ethereum_builder.state)
        assert len(root) == 64
        assert root != EMPTY_ROOT
