"""Tests for the account-model world state."""

from __future__ import annotations

import pytest

from repro.account.state import WorldState
from repro.account.transaction import (
    NULL_ADDRESS,
    make_account_transaction,
    make_coinbase_transaction,
)
from repro.chain.errors import (
    InsufficientBalanceError,
    NonceError,
    ValidationError,
)

ETHER = 10**18


def _funded_state(*addresses: str) -> WorldState:
    state = WorldState()
    for address in addresses:
        state.credit(address, 100 * ETHER)
    return state


def _transfer(state, sender, receiver, value, **kwargs):
    tx = make_account_transaction(
        sender=sender,
        receiver=receiver,
        value=value,
        nonce=state.nonce_of(sender),
        **kwargs,
    )
    return state.apply_transaction(tx)


class TestBasicTransfers:
    def test_value_moves_and_fee_is_charged(self):
        state = _funded_state("0xa")
        result = _transfer(state, "0xa", "0xb", ETHER)
        assert state.balance_of("0xb") == ETHER
        fee = result.gas_used * result.tx.gas_price
        assert state.balance_of("0xa") == 100 * ETHER - ETHER - fee
        assert result.receipt.success

    def test_nonce_increments(self):
        state = _funded_state("0xa")
        _transfer(state, "0xa", "0xb", 1)
        _transfer(state, "0xa", "0xb", 1)
        assert state.nonce_of("0xa") == 2

    def test_wrong_nonce_rejected(self):
        state = _funded_state("0xa")
        tx = make_account_transaction(
            sender="0xa", receiver="0xb", value=1, nonce=5
        )
        with pytest.raises(NonceError):
            state.apply_transaction(tx)

    def test_insufficient_balance_rejected(self):
        state = _funded_state("0xa")
        tx = make_account_transaction(
            sender="0xa", receiver="0xb", value=200 * ETHER, nonce=0
        )
        with pytest.raises(InsufficientBalanceError):
            state.apply_transaction(tx)

    def test_failed_tx_leaves_state_unchanged(self):
        state = _funded_state("0xa")
        before_balance = state.balance_of("0xa")
        before_nonce = state.nonce_of("0xa")
        tx = make_account_transaction(
            sender="0xa", receiver="0xb", value=1, nonce=9
        )
        with pytest.raises(NonceError):
            state.apply_transaction(tx)
        assert state.balance_of("0xa") == before_balance
        assert state.nonce_of("0xa") == before_nonce

    def test_gas_limit_below_intrinsic_rejected(self):
        state = _funded_state("0xa")
        tx = make_account_transaction(
            sender="0xa",
            receiver="0xb",
            value=1,
            nonce=0,
            gas_limit=100,
        )
        with pytest.raises(ValidationError):
            state.apply_transaction(tx)


class TestCoinbase:
    def test_coinbase_mints(self):
        state = WorldState()
        cb = make_coinbase_transaction(miner="0xm", reward=2 * ETHER, height=3)
        result = state.apply_transaction(cb)
        assert state.balance_of("0xm") == 2 * ETHER
        assert result.gas_used == 0
        assert result.is_coinbase


class TestContractCreation:
    def test_creation_deploys_at_fresh_address(self):
        state = _funded_state("0xa")
        tx = make_account_transaction(
            sender="0xa",
            receiver=NULL_ADDRESS,
            value=0,
            nonce=0,
            gas_limit=2_000_000,
            data="code",
        )
        result = state.apply_transaction(tx)
        created = result.receipt.created_contract
        assert created
        assert state.account(created).is_contract
        assert tx.is_contract_creation

    def test_two_creations_get_distinct_addresses(self):
        state = _funded_state("0xa")
        results = []
        for _ in range(2):
            tx = make_account_transaction(
                sender="0xa",
                receiver=NULL_ADDRESS,
                value=0,
                nonce=state.nonce_of("0xa"),
                gas_limit=2_000_000,
                data="code",
            )
            results.append(state.apply_transaction(tx))
        a, b = (r.receipt.created_contract for r in results)
        assert a != b

    def test_creation_gas_exceeds_transfer_gas(self):
        state = _funded_state("0xa")
        creation = make_account_transaction(
            sender="0xa",
            receiver=NULL_ADDRESS,
            value=0,
            nonce=0,
            gas_limit=2_000_000,
            data="c" * 1000,
        )
        created = state.apply_transaction(creation)
        transfer = _transfer(state, "0xa", "0xb", 1)
        assert created.gas_used > transfer.gas_used


class TestSupplyAccounting:
    def test_fees_burn_supply(self):
        state = _funded_state("0xa")
        before = state.total_supply()
        result = _transfer(state, "0xa", "0xb", ETHER)
        after = state.total_supply()
        assert before - after == result.gas_used * result.tx.gas_price

    def test_apply_block_runs_in_order(self):
        state = _funded_state("0xa")
        txs = [
            make_account_transaction(
                sender="0xa", receiver="0xb", value=1, nonce=n
            )
            for n in range(3)
        ]
        executed = state.apply_block(txs)
        assert len(executed) == 3
        assert state.nonce_of("0xa") == 3
