"""Tests for bootstrap confidence intervals over metric histories."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    difference_ci,
    metric_ci,
    series_with_ci,
    weighted_mean,
)


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_zero_weights(self):
        assert weighted_mean([1.0], [0.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])


class TestConfidenceInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(point=1.0, low=2.0, high=1.0, confidence=0.9)
        with pytest.raises(ValueError):
            ConfidenceInterval(point=1.0, low=0.0, high=2.0, confidence=1.5)

    def test_contains_and_width(self):
        ci = ConfidenceInterval(point=0.5, low=0.4, high=0.7, confidence=0.95)
        assert ci.contains(0.5)
        assert not ci.contains(0.39)
        assert ci.width == pytest.approx(0.3)


class TestBootstrap:
    def test_point_estimate_matches_weighted_mean(self):
        values = [0.1, 0.2, 0.3, 0.4]
        weights = [1.0, 2.0, 3.0, 4.0]
        ci = bootstrap_ci(values, weights, rng=random.Random(1))
        assert ci.point == pytest.approx(weighted_mean(values, weights))
        assert ci.low <= ci.point <= ci.high

    def test_constant_data_gives_degenerate_interval(self):
        ci = bootstrap_ci([0.5] * 10, [1.0] * 10, rng=random.Random(2))
        assert ci.low == pytest.approx(0.5)
        assert ci.high == pytest.approx(0.5)

    def test_more_data_narrows_interval(self):
        rng_values = random.Random(3)
        small = [rng_values.random() for _ in range(10)]
        large = small * 20
        ci_small = bootstrap_ci(
            small, [1.0] * len(small), rng=random.Random(4)
        )
        ci_large = bootstrap_ci(
            large, [1.0] * len(large), rng=random.Random(4)
        )
        assert ci_large.width < ci_small.width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], [])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], [1.0], resamples=5)

    @given(
        data=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=40
        )
    )
    @settings(max_examples=30)
    def test_interval_contains_point(self, data):
        ci = bootstrap_ci(
            data, [1.0] * len(data), resamples=100, rng=random.Random(0)
        )
        assert ci.low <= ci.point <= ci.high
        assert 0.0 <= ci.low and ci.high <= 1.0


class TestHistoryIntegration:
    def test_metric_ci_on_real_history(self, ethereum_history):
        ci = metric_ci(
            ethereum_history,
            lambda r: r.metrics.single_conflict_rate,
            resamples=200,
            rng=random.Random(5),
        )
        assert 0.0 < ci.point < 1.0
        assert ci.width < 0.5

    def test_series_with_ci(self, ethereum_history):
        series = series_with_ci(
            ethereum_history,
            lambda r: r.metrics.group_conflict_rate,
            num_buckets=6,
            resamples=100,
            rng=random.Random(6),
        )
        assert len(series) == 6
        years = [year for year, _ci in series]
        assert years == sorted(years)
        for _year, ci in series:
            assert ci.low <= ci.point <= ci.high

    def test_difference_ci_certifies_ordering(
        self, ethereum_history, bitcoin_history
    ):
        """Ethereum's conflict rate is above Bitcoin's, with certainty:
        the 95% CI for the difference excludes zero (paper §IV-A)."""
        ci = difference_ci(
            ethereum_history,
            bitcoin_history,
            lambda r: r.metrics.single_conflict_rate,
            resamples=300,
            rng=random.Random(7),
        )
        assert ci.point > 0
        assert ci.low > 0  # zero excluded: the ordering is significant
