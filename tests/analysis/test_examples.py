"""Tests pinning the paper's worked examples to its published numbers."""

from __future__ import annotations

import pytest

from repro.analysis.examples import (
    figure_1a_block,
    figure_1b_block,
    figure_6_chain,
)
from repro.core.speedup import speculative_speedup_exact


class TestFigure1a:
    def test_five_transactions_four_components(self):
        example = figure_1a_block()
        assert example.tdg.num_transactions == 5
        assert len(example.tdg.groups) == 4

    def test_paper_rates(self):
        """Paper: 'single-transaction conflict rate is 40%, and the
        group conflict rate is also 40%'."""
        example = figure_1a_block()
        assert example.metrics.single_conflict_rate == pytest.approx(0.40)
        assert example.metrics.group_conflict_rate == pytest.approx(0.40)

    def test_dwarfpool_pair_is_the_conflict(self):
        example = figure_1a_block()
        conflicted = next(g for g in example.tdg.groups if len(g) > 1)
        assert set(conflicted) == {"tx3", "tx4"}

    def test_speedup_example(self):
        """§V-A: 5 txs at c=0.4 with n>=5 gives speed-up 5/3."""
        assert speculative_speedup_exact(5, 8, 0.4) == pytest.approx(5 / 3)


class TestFigure1b:
    def test_five_components_counting_coinbase(self):
        """Paper: 'The block contains 5 connected components.'

        The paper's count includes the coinbase component drawn in
        Fig. 1b; the TDG (which excludes coinbases per §III-A1) holds
        the other four: Poloniex fan-in, the contract chain, the
        DwarfPool pair, and the lone transaction.
        """
        example = figure_1b_block()
        assert len(example.tdg.groups) + 1 == 5

    def test_fourteen_of_sixteen_conflicted(self):
        example = figure_1b_block()
        assert example.metrics.num_conflicted == 14
        assert example.total_with_coinbase == 16
        assert example.single_conflict_rate_with_coinbase == pytest.approx(
            0.875
        )

    def test_group_rate_56_25(self):
        example = figure_1b_block()
        assert example.metrics.lcc_size == 9  # the Poloniex fan-in
        assert example.group_conflict_rate_with_coinbase == pytest.approx(
            0.5625
        )

    def test_eighteen_internal_transactions(self):
        """Paper: the block contains 18 internal transactions."""
        from repro.analysis.examples import figure_1b_edges

        tx_edges = figure_1b_edges()
        internal = sum(len(edges) - 1 for edges in tx_edges.values())
        assert internal == 18
        assert len(tx_edges) == 15  # regular transactions

    def test_speedup_examples(self):
        """§V-A's worked numbers for block 1000124."""
        assert speculative_speedup_exact(16, 16, 0.875) == pytest.approx(
            16 / 15
        )
        assert speculative_speedup_exact(16, 8, 0.875) == pytest.approx(1.0)
        assert speculative_speedup_exact(16, 4, 0.875) < 1.0


class TestFigure6:
    def test_chain_of_eighteen(self):
        transactions, tdg = figure_6_chain()
        assert len(transactions) == 18
        assert tdg.num_transactions == 18
        assert tdg.lcc_size == 18
        assert tdg.num_conflicted == 18

    def test_chain_is_sequential_execution(self):
        """'The transactions within this sequence must be executed
        sequentially' — the group executor can do no better than 18."""
        from repro.execution.engine import tasks_from_utxo_block
        from repro.execution.grouped import GroupedExecutor

        transactions, _ = figure_6_chain()
        tasks = tasks_from_utxo_block(transactions)
        report = GroupedExecutor(cores=64).run(tasks)
        assert report.wall_time == 18.0

    def test_values_decrease_along_chain(self):
        transactions, _ = figure_6_chain()
        mains = [tx.outputs[0].value for tx in transactions]
        assert all(b <= a for a, b in zip(mains, mains[1:]))

    def test_chain_spends_are_valid(self):
        """The chain replays against a UTXO set seeded with the source."""
        from repro.utxo.utxo_set import UTXOSet

        transactions, _ = figure_6_chain()
        first_input = transactions[0].inputs[0]
        from repro.utxo.txo import TXO

        utxos = UTXOSet(
            [
                TXO(
                    outpoint=first_input,
                    value=transactions[0].total_output_value(),
                    owner="sweeper",
                )
            ]
        )
        for tx in transactions:
            utxos.apply_transaction(tx)


class TestBlock358624:
    """The paper's extreme Bitcoin block: 3217 of 3264 txs dependent."""

    def test_dependency_counts_match_paper(self):
        from repro.analysis.examples import block_358624_block

        example = block_358624_block()
        assert example.tdg.num_transactions == 3264
        assert example.tdg.lcc_size == 3217
        assert example.metrics.num_conflicted == 3217

    def test_no_speedup_available(self):
        """Eq. 2: l ~ 0.986 means speed-up ~1 at any core count."""
        from repro.analysis.examples import block_358624_block
        from repro.core.speedup import group_speedup_bound

        example = block_358624_block()
        l = example.metrics.group_conflict_rate
        assert l == pytest.approx(3217 / 3264)
        assert group_speedup_bound(64, l) < 1.02
