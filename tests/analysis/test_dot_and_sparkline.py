"""Tests for DOT export and sparkline rendering."""

from __future__ import annotations

import pytest

from repro.analysis.dot import (
    account_tdg_to_dot,
    tdg_groups_to_dot,
    utxo_chain_to_dot,
)
from repro.analysis.examples import figure_1b_edges, figure_6_chain
from repro.analysis.report import render_sparkline
from repro.core.aggregation import BucketedSeries
from repro.core.tdg import TDGResult


def _series(values):
    n = len(values)
    return BucketedSeries(
        positions=tuple(float(i) for i in range(n)),
        values=tuple(values),
        weights=tuple(1.0 for _ in range(n)),
        counts=tuple(1 for _ in range(n)),
    )


class TestAccountDot:
    def test_renders_fig1b(self):
        dot = account_tdg_to_dot(figure_1b_edges(), title="block-1000124")
        assert dot.startswith('digraph "block-1000124" {')
        assert dot.rstrip().endswith("}")
        assert '"0x32b"' in dot           # Poloniex node
        assert "style=dashed" in dot      # internal transactions
        assert "style=solid" in dot       # regular transactions

    def test_edge_counts(self):
        edges = {"t1": [("a", "b")], "t2": [("c", "d"), ("d", "e")]}
        dot = account_tdg_to_dot(edges)
        assert dot.count("->") == 3
        assert dot.count("style=dashed") == 1

    def test_quoting(self):
        dot = account_tdg_to_dot({"t": [('we"ird', "x")]})
        assert r"\"" in dot


class TestUTXODot:
    def test_renders_fig6(self):
        transactions, _tdg = figure_6_chain()
        dot = utxo_chain_to_dot(transactions, title="block-500000")
        # One box per transaction, one circle per output.
        assert dot.count("shape=box") == len(transactions)
        outputs = sum(len(tx.outputs) for tx in transactions)
        assert dot.count("shape=circle") == outputs
        # 17 intra-block spends drawn solid.
        assert dot.count("style=solid") == len(transactions) - 1

    def test_valid_structure(self):
        transactions, _ = figure_6_chain()
        dot = utxo_chain_to_dot(transactions)
        assert dot.count("{") == dot.count("}")


class TestGroupsDot:
    def test_clusters(self):
        tdg = TDGResult(
            groups=(("tx_a", "tx_b"), ("tx_c",)), num_transactions=3
        )
        dot = tdg_groups_to_dot(tdg)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot
        assert "group 0 (2)" in dot


class TestSparkline:
    def test_monotone_series(self):
        line = render_sparkline(_series([0.0, 0.5, 1.0]), label="x")
        assert line.startswith("x [")
        body = line.split("[")[1].split("]")[0]
        assert body[0] == " " and body[-1] == "@"

    def test_constant_series(self):
        line = render_sparkline(_series([0.4, 0.4, 0.4]))
        body = line.split("[")[1].split("]")[0]
        assert set(body) == {" "}

    def test_downsampling(self):
        line = render_sparkline(_series([float(i) for i in range(100)]),
                                width=10)
        body = line.split("[")[1].split("]")[0]
        assert len(body) == 10

    def test_fixed_bounds(self):
        line = render_sparkline(
            _series([0.5]), low=0.0, high=1.0
        )
        body = line.split("[")[1].split("]")[0]
        middle = len(" .:-=+*#%@") // 2
        assert body in {" .:-=+*#%@"[middle - 1], " .:-=+*#%@"[middle]}

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_sparkline(_series([1.0]), width=0)
