"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_chain_exits_with_clear_message(self, capsys):
        assert main(["analyze", "--chain", "solana"]) == 2
        err = capsys.readouterr().err
        assert "unknown chain 'solana'" in err
        assert "ethereum" in err  # the known names are listed


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Bitcoin" in out and "Zilliqa" in out

    def test_examples(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "40.0%" in out
        assert "87.5%" in out
        assert "18" in out

    def test_analyze_small_chain(self, capsys):
        code = main(
            ["analyze", "--chain", "dogecoin", "--blocks", "10",
             "--buckets", "4", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dogecoin: single-transaction conflict rate" in out
        assert "tx_weighted" in out

    def test_speedup_command(self, capsys):
        code = main(
            ["speedup", "--chain", "zilliqa", "--blocks", "10",
             "--cores", "8", "--buckets", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Eq. 1" in out and "Eq. 2" in out

    def test_speedup_bad_cores(self, capsys):
        assert main(
            ["speedup", "--chain", "zilliqa", "--cores", "eight"]
        ) == 2
        assert main(
            ["speedup", "--chain", "zilliqa", "--cores", "0"]
        ) == 2

    def test_compare(self, capsys):
        code = main(
            ["compare", "--left", "dogecoin", "--right", "litecoin",
             "--blocks", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dogecoin" in out and "litecoin" in out

    def test_compare_unknown_chain(self):
        assert main(
            ["compare", "--left", "dogecoin", "--right", "nope"]
        ) == 2

    def test_export(self, tmp_path, capsys):
        code = main(
            ["export", "--chain", "dogecoin", "--blocks", "6",
             "--out", str(tmp_path)]
        )
        assert code == 0
        written = list(tmp_path.glob("*.csv"))
        assert (tmp_path / "blocks.csv").exists()
        assert len(written) >= 2

    def test_report(self, tmp_path, capsys):
        code = main(
            ["report", "--out", str(tmp_path), "--blocks", "12",
             "--scale", "0.3", "--buckets", "4"]
        )
        assert code == 0
        names = {path.name for path in tmp_path.glob("*.txt")}
        assert {
            "table1.txt", "fig4_ethereum.txt", "fig5_bitcoin.txt",
            "fig7_all_chains.txt", "fig8_eth_vs_etc.txt",
            "fig9_btc_vs_bch.txt", "fig10_speedups.txt",
        } <= names
