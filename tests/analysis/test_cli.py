"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_chain_exits_with_clear_message(self, capsys):
        assert main(["analyze", "--chain", "solana"]) == 2
        err = capsys.readouterr().err
        assert "unknown chain 'solana'" in err
        assert "ethereum" in err  # the known names are listed


class TestParallelFlags:
    def test_analyze_process_backend_matches_serial_output(self, capsys):
        args = ["analyze", "--chain", "dogecoin", "--blocks", "8",
                "--buckets", "4", "--seed", "3"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(
            args + ["--backend", "process", "--jobs", "2"]
        ) == 0
        assert capsys.readouterr().out == serial_out

    def test_jobs_zero_exits_2_with_clear_message(self, capsys):
        code = main([
            "analyze", "--chain", "dogecoin", "--blocks", "4",
            "--jobs", "0",
        ])
        assert code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_negative_jobs_rejected_on_compare(self, capsys):
        code = main([
            "compare", "--left", "bitcoin", "--right", "bitcoin_cash",
            "--blocks", "4", "--jobs", "-1",
        ])
        assert code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--chain", "dogecoin", "--backend", "warp"])
        assert excinfo.value.code == 2

    def test_chunk_size_zero_exits_2(self, capsys):
        code = main([
            "analyze", "--chain", "dogecoin", "--blocks", "4",
            "--backend", "thread", "--chunk-size", "0",
        ])
        assert code == 2
        assert "chunk size must be >= 1" in capsys.readouterr().err


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Bitcoin" in out and "Zilliqa" in out

    def test_examples(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "40.0%" in out
        assert "87.5%" in out
        assert "18" in out

    def test_analyze_small_chain(self, capsys):
        code = main(
            ["analyze", "--chain", "dogecoin", "--blocks", "10",
             "--buckets", "4", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dogecoin: single-transaction conflict rate" in out
        assert "tx_weighted" in out

    def test_speedup_command(self, capsys):
        code = main(
            ["speedup", "--chain", "zilliqa", "--blocks", "10",
             "--cores", "8", "--buckets", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Eq. 1" in out and "Eq. 2" in out

    def test_speedup_bad_cores(self, capsys):
        assert main(
            ["speedup", "--chain", "zilliqa", "--cores", "eight"]
        ) == 2
        assert main(
            ["speedup", "--chain", "zilliqa", "--cores", "0"]
        ) == 2

    def test_compare(self, capsys):
        code = main(
            ["compare", "--left", "dogecoin", "--right", "litecoin",
             "--blocks", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dogecoin" in out and "litecoin" in out

    def test_compare_unknown_chain(self):
        assert main(
            ["compare", "--left", "dogecoin", "--right", "nope"]
        ) == 2

    def test_export(self, tmp_path, capsys):
        code = main(
            ["export", "--chain", "dogecoin", "--blocks", "6",
             "--out", str(tmp_path)]
        )
        assert code == 0
        written = list(tmp_path.glob("*.csv"))
        assert (tmp_path / "blocks.csv").exists()
        assert len(written) >= 2

    def test_report(self, tmp_path, capsys):
        code = main(
            ["report", "--out", str(tmp_path), "--blocks", "12",
             "--scale", "0.3", "--buckets", "4"]
        )
        assert code == 0
        names = {path.name for path in tmp_path.glob("*.txt")}
        assert {
            "table1.txt", "fig4_ethereum.txt", "fig5_bitcoin.txt",
            "fig7_all_chains.txt", "fig8_eth_vs_etc.txt",
            "fig9_btc_vs_bch.txt", "fig10_speedups.txt",
        } <= names
