"""Tests for the figure builders and text rendering."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    absolute_lcc_series,
    conflict_series,
    figure10,
    figure4,
    figure7,
    figure8,
    figure9,
    load_series,
)
from repro.analysis.report import (
    format_rate,
    format_speedup,
    render_series,
    render_series_table,
    render_table,
    render_table1,
)
from repro.workload.profiles import ALL_PROFILES


class TestLoadSeries:
    def test_account_chain_has_all_txs_series(self, ethereum_history):
        data = load_series(ethereum_history)
        assert set(data.series) == {"regular_txs", "all_txs"}
        # Internal transactions make "all" strictly larger on average.
        regular = data.series["regular_txs"].overall_mean
        all_txs = data.series["all_txs"].overall_mean
        assert all_txs > regular

    def test_utxo_chain_has_input_txos_series(self, bitcoin_history):
        data = load_series(bitcoin_history)
        assert set(data.series) == {"regular_txs", "input_txos"}

    def test_positions_increase(self, ethereum_history):
        data = load_series(ethereum_history)
        positions = data.series["regular_txs"].positions
        assert all(b > a for a, b in zip(positions, positions[1:]))


class TestConflictSeries:
    def test_metric_validation(self, ethereum_history):
        with pytest.raises(ValueError):
            conflict_series(ethereum_history, metric="both")

    def test_account_variants(self, ethereum_history):
        data = conflict_series(ethereum_history, metric="single")
        assert set(data.series) == {"tx_weighted", "gas_weighted"}

    def test_rates_in_unit_interval(self, ethereum_history):
        for metric in ("single", "group"):
            data = conflict_series(ethereum_history, metric=metric)
            for series in data.series.values():
                assert all(0.0 <= v <= 1.0 for v in series.values)

    def test_group_rate_below_single_rate(self, ethereum_history):
        single = conflict_series(ethereum_history, metric="single")
        group = conflict_series(ethereum_history, metric="group")
        assert (
            group.series["tx_weighted"].overall_mean
            <= single.series["tx_weighted"].overall_mean
        )


class TestCompositeFigures:
    def test_figure4_panels(self, ethereum_history):
        load, single, group = figure4(ethereum_history)
        assert load.figure == "load"
        assert single.figure == "conflict-single"
        assert group.figure == "conflict-group"

    def test_figure7_covers_all_chains(
        self, ethereum_history, bitcoin_history
    ):
        panels = figure7(
            {"ethereum": ethereum_history, "bitcoin": bitcoin_history}
        )
        assert set(panels) == {"single", "group"}
        assert set(panels["single"].series) == {"ethereum", "bitcoin"}

    def test_figure8_and_9_shapes(self, ethereum_history, bitcoin_history):
        eight = figure8(ethereum_history, ethereum_history)
        assert set(eight) == {"load", "single", "group"}
        nine = figure9(bitcoin_history, bitcoin_history)
        assert "lcc_absolute" in nine

    def test_absolute_lcc_series(self, bitcoin_history):
        data = absolute_lcc_series(bitcoin_history)
        assert all(v >= 0 for v in data.series["lcc_size"].values)


class TestFigure10:
    def test_core_sweep_labels(self, ethereum_history):
        panels = figure10(ethereum_history, cores=(4, 8, 64))
        assert set(panels["speculative"].series) == {
            "4_cores", "8_cores", "64_cores",
        }

    def test_group_speedups_dominate_speculative(self, ethereum_history):
        """Fig. 10's headline contrast: group >> single-tx speed-ups."""
        panels = figure10(ethereum_history, cores=(8,))
        speculative = panels["speculative"].series["8_cores"].overall_mean
        grouped = panels["grouped"].series["8_cores"].overall_mean
        assert grouped > speculative

    def test_group_speedups_bounded_by_cores(self, ethereum_history):
        panels = figure10(ethereum_history, cores=(4, 64))
        assert all(
            v <= 4.0 + 1e-9
            for v in panels["grouped"].series["4_cores"].values
        )

    def test_more_cores_never_reduce_group_speedup(self, ethereum_history):
        panels = figure10(ethereum_history, cores=(4, 64))
        four = panels["grouped"].series["4_cores"].values
        sixty_four = panels["grouped"].series["64_cores"].values
        assert all(b >= a for a, b in zip(four, sixty_four))


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(
            ["a", "longheader"], [["1", "2"], ["333", "4"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "longheader" in lines[1]
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_render_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_table1_contains_all_chains(self):
        text = render_table1(ALL_PROFILES)
        for profile in ALL_PROFILES:
            assert profile.display_name in text
        assert "PoW+Sharding" in text

    def test_render_series(self, ethereum_history):
        data = conflict_series(ethereum_history, metric="single")
        text = render_series(data.series["tx_weighted"], label="eth")
        assert text.startswith("eth")
        assert len(text.splitlines()) == len(
            data.series["tx_weighted"].values
        ) + 1

    def test_render_series_table(self, ethereum_history):
        data = conflict_series(ethereum_history, metric="single")
        text = render_series_table(data.series, title="rates")
        assert "tx_weighted" in text
        assert "gas_weighted" in text

    def test_render_series_table_empty(self):
        with pytest.raises(ValueError):
            render_series_table({})

    def test_formatters(self):
        assert format_rate(0.1234) == "12.3%"
        assert format_speedup(5.678) == "5.68x"


class _Event:
    """Duck-typed stand-in for a flight-recorder TimelineEvent."""

    def __init__(self, kind, executor, lane, clock, cost, block=1):
        self.kind = kind
        self.executor = executor
        self.lane = lane
        self.clock = clock
        self.cost = cost
        self.block = block


class TestRenderGantt:
    def _events(self):
        return [
            _Event("start", "dag", 0, 0.0, 4.0),
            _Event("start", "dag", 1, 0.0, 2.0),
            _Event("start", "dag", 1, 2.0, 2.0),
            _Event("schedule", "dag", -1, 0.0, 0.0),  # queue: skipped
        ]

    def test_rows_per_lane_with_busy_percent(self):
        from repro.analysis.report import render_gantt

        chart = render_gantt(self._events(), width=16, title="lanes")
        lines = chart.splitlines()
        assert lines[0] == "lanes"
        assert lines[1].startswith("dag/lane 0")
        assert lines[2].startswith("dag/lane 1")
        # Both lanes are busy for the whole makespan.
        assert lines[1].rstrip().endswith("100.0%")
        assert lines[2].rstrip().endswith("100.0%")
        # Lane 1 runs two tasks -> two distinct fill characters.
        row = lines[2].split("|")[1]
        assert len(set(row)) == 2
        # Axis ends at the makespan.
        assert lines[-1].strip().startswith("0")
        assert lines[-1].rstrip().endswith("4")

    def test_multi_block_runs_lay_out_sequentially(self):
        from repro.analysis.report import render_gantt

        events = [
            _Event("start", "dag", 0, 0.0, 2.0, block=1),
            _Event("start", "dag", 0, 0.0, 2.0, block=2),
        ]
        chart = render_gantt(events, width=16)
        row = chart.splitlines()[0].split("|")[1]
        # Blocks replay from clock 0 but render side by side, so the
        # lane is solid across both and the axis spans their sum.
        assert " " not in row
        assert chart.splitlines()[-1].rstrip().endswith("4")

    def test_empty_and_validation(self):
        from repro.analysis.report import render_gantt

        assert "no lane executions" in render_gantt([])
        with pytest.raises(ValueError):
            render_gantt(self._events(), width=4)


class TestRenderStageShares:
    def test_bars_scale_with_fraction(self):
        from repro.analysis.report import render_stage_shares

        text = render_stage_shares(
            [("consensus", 0.75), ("scheduled", 0.25)], title="shares"
        )
        lines = text.splitlines()
        assert lines[0] == "shares"
        assert lines[1].rstrip().endswith("75.0%")
        assert lines[1].count("#") == 24
        assert lines[2].count("#") == 8

    def test_empty_shares(self):
        from repro.analysis.report import render_stage_shares

        assert render_stage_shares([]) == "(no stage shares)"
