"""Tests for inter-block concurrency analysis (§VII extension)."""

from __future__ import annotations

import pytest

from repro.account.receipts import ExecutedTransaction, Receipt
from repro.account.transaction import make_account_transaction
from repro.core.interblock import (
    account_window_concurrency,
    sliding_window_speedups,
    utxo_window_concurrency,
)
from repro.utxo.transaction import TxOutputSpec, make_coinbase, make_transaction
from repro.utxo.txo import COIN


def _executed(sender, receiver, nonce=0):
    tx = make_account_transaction(
        sender=sender, receiver=receiver, value=1, nonce=nonce
    )
    return ExecutedTransaction(
        tx=tx,
        receipt=Receipt(tx_hash=tx.tx_hash, success=True, gas_used=21_000),
    )


def _utxo_chain_blocks():
    """Two blocks where block 2 spends outputs created in block 1."""
    cb0 = make_coinbase(reward=10 * COIN, miner="m", height=0)
    a = make_transaction(
        inputs=[cb0.outputs[0].outpoint],
        outputs=[TxOutputSpec(value=10 * COIN, owner="x")],
        nonce="a",
    )
    b = make_transaction(
        inputs=[a.outputs[0].outpoint],
        outputs=[TxOutputSpec(value=10 * COIN, owner="y")],
        nonce="b",
    )
    # Block 2: c spends b's output (cross-block edge), d independent.
    c = make_transaction(
        inputs=[b.outputs[0].outpoint],
        outputs=[TxOutputSpec(value=10 * COIN, owner="z")],
        nonce="c",
    )
    cb1 = make_coinbase(reward=10 * COIN, miner="m", height=1)
    d = make_transaction(
        inputs=[cb1.outputs[0].outpoint],
        outputs=[TxOutputSpec(value=10 * COIN, owner="w")],
        nonce="d",
    )
    block1 = [cb0, a, b]
    block2 = [cb1, c, d]
    return block1, block2


class TestUTXOWindows:
    def test_cross_block_edges_merge_groups(self):
        block1, block2 = _utxo_chain_blocks()
        window = utxo_window_concurrency([block1, block2])
        assert window.num_transactions == 4
        # a-b-c chain spans the block boundary.
        assert window.window_tdg.lcc_size == 3
        assert window.per_block_lccs == (2, 1)

    def test_single_block_window_equals_block_tdg(self):
        block1, _ = _utxo_chain_blocks()
        window = utxo_window_concurrency([block1])
        assert window.window_tdg.lcc_size == max(window.per_block_lccs)

    def test_interblock_speedup_gains_from_imbalance(self):
        """Interleaving absorbs per-block LCC tails across boundaries."""
        block1, block2 = _utxo_chain_blocks()
        window = utxo_window_concurrency([block1, block2])
        pipeline = window.pipeline_makespan(cores=4)
        interleaved = window.interleaved_makespan(cores=4)
        # pipeline: block1 takes 2 (chain a-b), block2 takes 1 => 3.
        # interleaved: chain a-b-c takes 3, d overlaps => 3.
        assert pipeline == pytest.approx(3.0)
        assert interleaved == pytest.approx(3.0)
        assert window.interblock_speedup(4) == pytest.approx(1.0)

    def test_parallel_blocks_pipeline_poorly(self):
        """Independent single-tx blocks gain the full window width."""
        blocks = []
        for height in range(4):
            cb = make_coinbase(reward=COIN, miner="m", height=height)
            spend = make_transaction(
                inputs=[cb.outputs[0].outpoint],
                outputs=[TxOutputSpec(value=COIN, owner=f"u{height}")],
                nonce=("s", height),
            )
            blocks.append([cb, spend])
        window = utxo_window_concurrency(blocks)
        # Pipeline: 4 barriers of 1 unit each; interleaved: 1 unit.
        assert window.interblock_speedup(cores=8) == pytest.approx(4.0)


class TestAccountWindows:
    def test_hot_address_chains_across_blocks(self):
        """Exchange fan-in merges across blocks: limited inter-block gain.

        This is the §VII caveat the analysis surfaces: under component
        scheduling, a hot address chains the window's groups together,
        so inter-block interleaving cannot beat the per-block pipeline.
        """
        block1 = [_executed(f"0xa{i}", "0xhot", nonce=0) for i in range(3)]
        block2 = [_executed(f"0xb{i}", "0xhot", nonce=0) for i in range(3)]
        window = account_window_concurrency([block1, block2])
        assert window.window_tdg.lcc_size == 6
        assert window.interblock_speedup(cores=8) <= 1.0 + 1e-9

    def test_disjoint_blocks_interleave_freely(self):
        block1 = [_executed("0xa", "0xhub1"), _executed("0xb", "0xhub1")]
        block2 = [_executed("0xc", "0xhub2"), _executed("0xd", "0xhub2")]
        window = account_window_concurrency([block1, block2])
        assert window.interblock_speedup(cores=8) == pytest.approx(2.0)

    def test_window_group_conflict_rate(self):
        block1 = [_executed("0xa", "0xhub")]
        block2 = [_executed("0xb", "0xother")]
        window = account_window_concurrency([block1, block2])
        assert window.window_group_conflict_rate == pytest.approx(0.5)


class TestSlidingWindows:
    def test_window_count(self):
        block1, block2 = _utxo_chain_blocks()
        speedups = sliding_window_speedups(
            [block1, block2, block1, block2][:3],
            window=2,
            cores=4,
            model="utxo",
        )
        assert len(speedups) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            sliding_window_speedups([], window=0, cores=4, model="utxo")
        with pytest.raises(ValueError):
            sliding_window_speedups([], window=1, cores=4, model="graph")

    def test_on_real_bitcoin_chain(self, small_bitcoin_ledger):
        blocks = [
            list(block.transactions) for block in small_bitcoin_ledger
        ][-12:]
        # With ample cores each block's makespan is its LCC tail, so
        # interleaving across block barriers absorbs those tails.
        speedups = sliding_window_speedups(
            blocks, window=4, cores=64, model="utxo"
        )
        assert len(speedups) == 9
        assert all(s >= 0.85 for s in speedups)
        assert max(speedups) > 1.0
