"""Tests for block concurrency metrics, incl. property-based invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import BlockMetrics, compute_block_metrics
from repro.core.tdg import TDGResult


def _tdg(*groups: tuple[str, ...]) -> TDGResult:
    return TDGResult(
        groups=tuple(groups),
        num_transactions=sum(len(g) for g in groups),
    )


class TestUnweightedMetrics:
    def test_fig_1a_rates(self):
        """Paper Fig. 1a: 5 txs, one pair conflicted -> 40% / 40%."""
        tdg = _tdg(("t0",), ("t1",), ("t2",), ("t3", "t4"))
        metrics = compute_block_metrics(tdg)
        assert metrics.single_conflict_rate == pytest.approx(0.4)
        assert metrics.group_conflict_rate == pytest.approx(0.4)

    def test_no_conflicts(self):
        metrics = compute_block_metrics(_tdg(("a",), ("b",)))
        assert metrics.single_conflict_rate == 0.0
        assert metrics.group_conflict_rate == 0.5  # 1/x floor
        assert metrics.is_fully_concurrent

    def test_fully_sequential_block(self):
        """The Bitcoin block 358624 case: nearly everything dependent."""
        tdg = _tdg(tuple(f"t{i}" for i in range(10)))
        metrics = compute_block_metrics(tdg)
        assert metrics.single_conflict_rate == 1.0
        assert metrics.group_conflict_rate == 1.0

    def test_empty_block(self):
        metrics = compute_block_metrics(_tdg())
        assert metrics.single_conflict_rate == 0.0
        assert metrics.group_conflict_rate == 0.0

    def test_validation_bounds(self):
        with pytest.raises(ValueError):
            BlockMetrics(
                num_transactions=2,
                num_conflicted=3,
                lcc_size=1,
                total_weight=2,
                conflicted_weight=0,
                lcc_weight=1,
            )
        with pytest.raises(ValueError):
            BlockMetrics(
                num_transactions=2,
                num_conflicted=2,
                lcc_size=3,
                total_weight=2,
                conflicted_weight=2,
                lcc_weight=2,
            )


class TestWeightedMetrics:
    def test_gas_weighting_shifts_rates(self):
        """Heavy unconflicted tx pulls the weighted rate below the plain."""
        tdg = _tdg(("cheap1", "cheap2"), ("expensive",))
        weights = {"cheap1": 1.0, "cheap2": 1.0, "expensive": 8.0}
        metrics = compute_block_metrics(tdg, weights=weights)
        assert metrics.single_conflict_rate == pytest.approx(2 / 3)
        assert metrics.weighted_single_conflict_rate == pytest.approx(0.2)

    def test_weighted_group_rate_uses_heaviest_group(self):
        tdg = _tdg(("a", "b"), ("c",))
        weights = {"a": 1.0, "b": 1.0, "c": 10.0}
        metrics = compute_block_metrics(tdg, weights=weights)
        # By count the LCC is {a,b}; by weight it is {c}.
        assert metrics.lcc_size == 2
        assert metrics.weighted_group_conflict_rate == pytest.approx(10 / 12)

    def test_missing_weights_default_to_one(self):
        tdg = _tdg(("a", "b"))
        metrics = compute_block_metrics(tdg, weights={"a": 3.0})
        assert metrics.total_weight == pytest.approx(4.0)

    def test_unit_weights_reduce_to_unweighted(self):
        tdg = _tdg(("a", "b"), ("c",), ("d", "e", "f"))
        plain = compute_block_metrics(tdg)
        unit = compute_block_metrics(
            tdg, weights={h: 1.0 for g in tdg.groups for h in g}
        )
        assert plain.weighted_single_conflict_rate == pytest.approx(
            unit.single_conflict_rate
        )
        assert plain.weighted_group_conflict_rate == pytest.approx(
            unit.group_conflict_rate
        )


# -- property-based invariants -----------------------------------------------

group_sizes = st.lists(st.integers(min_value=1, max_value=12), min_size=1,
                       max_size=15)


def _tdg_from_sizes(sizes: list[int]) -> TDGResult:
    groups = []
    counter = 0
    for size in sizes:
        groups.append(tuple(f"t{counter + i}" for i in range(size)))
        counter += size
    return TDGResult(groups=tuple(groups), num_transactions=counter)


@settings(max_examples=200)
@given(sizes=group_sizes)
def test_group_rate_never_exceeds_single_rate_when_conflicted(sizes):
    """§IV-B: LCC txs are all conflicted, so group <= single if any conflict."""
    metrics = compute_block_metrics(_tdg_from_sizes(sizes))
    if metrics.num_conflicted > 0:
        assert metrics.group_conflict_rate <= metrics.single_conflict_rate


@settings(max_examples=200)
@given(sizes=group_sizes)
def test_rates_are_valid_probabilities(sizes):
    metrics = compute_block_metrics(_tdg_from_sizes(sizes))
    assert 0.0 <= metrics.single_conflict_rate <= 1.0
    assert 0.0 < metrics.group_conflict_rate <= 1.0


@settings(max_examples=100)
@given(
    sizes=group_sizes,
    weights=st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=40, max_size=40
    ),
)
def test_weighted_rates_are_valid_probabilities(sizes, weights):
    tdg = _tdg_from_sizes(sizes)
    weight_map = {
        h: weights[i % len(weights)]
        for i, h in enumerate(h for g in tdg.groups for h in g)
    }
    metrics = compute_block_metrics(tdg, weights=weight_map)
    assert 0.0 <= metrics.weighted_single_conflict_rate <= 1.0 + 1e-12
    assert 0.0 <= metrics.weighted_group_conflict_rate <= 1.0 + 1e-12
