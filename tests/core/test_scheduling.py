"""Tests for multiprocessor scheduling of dependency groups (§V-B)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduling import (
    list_schedule,
    lpt_schedule,
    makespan_lower_bound,
    optimal_makespan,
    scheduled_speedup,
)

job_lists = st.lists(
    st.floats(min_value=0.0, max_value=50.0), min_size=0, max_size=14
)
core_counts = st.integers(min_value=1, max_value=8)


class TestLowerBound:
    def test_critical_path_dominates(self):
        assert makespan_lower_bound([10, 1, 1], 4) == 10

    def test_total_work_dominates(self):
        assert makespan_lower_bound([3, 3, 3, 3], 2) == 6

    def test_empty(self):
        assert makespan_lower_bound([], 4) == 0.0


class TestSchedulers:
    def test_list_schedule_assigns_all_jobs(self):
        schedule = list_schedule([5, 3, 2, 2], 2)
        assigned = sorted(
            index for core in schedule.assignments for index in core
        )
        assert assigned == [0, 1, 2, 3]

    def test_lpt_beats_or_ties_bad_list_order(self):
        # Adversarial order for greedy: small jobs first.
        sizes = [1, 1, 1, 1, 8]
        greedy = list_schedule(sizes, 2).makespan
        lpt = lpt_schedule(sizes, 2).makespan
        assert lpt <= greedy

    def test_lpt_preserves_job_identity(self):
        sizes = [2, 9, 4]
        schedule = lpt_schedule(sizes, 2)
        loads = schedule.core_loads(sizes)
        assert sum(loads) == pytest.approx(sum(sizes))
        assert max(loads) == schedule.makespan

    def test_single_core_makespan_is_total(self):
        sizes = [4, 2, 6]
        assert list_schedule(sizes, 1).makespan == 12

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            list_schedule([-1], 2)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            lpt_schedule([1], 0)


class TestOptimal:
    def test_small_instance_exact(self):
        # Optimal is 9 (5+4 / 6+3), LPT gets it here too.
        assert optimal_makespan([6, 5, 4, 3], 2) == 9

    def test_exact_beats_greedy_counterexample(self):
        # Classic LPT-suboptimal instance.
        sizes = [3, 3, 2, 2, 2]
        assert optimal_makespan(sizes, 2) == 6
        assert lpt_schedule(sizes, 2).makespan >= 6

    def test_job_limit_enforced(self):
        with pytest.raises(ValueError):
            optimal_makespan([1.0] * 20, 2)


class TestScheduledSpeedup:
    def test_infinite_like_cores_reach_inverse_l(self):
        """With cores >= #groups, speed-up = total / largest (the 1/l bound)."""
        sizes = [10, 5, 5]
        speedup = scheduled_speedup(sizes, 16, policy="lpt")
        assert speedup == pytest.approx(20 / 10)

    def test_overhead_reduces_speedup(self):
        sizes = [4, 4, 4, 4]
        free = scheduled_speedup(sizes, 4)
        taxed = scheduled_speedup(sizes, 4, overhead=2.0)
        assert taxed < free

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            scheduled_speedup([1], 2, policy="magic")

    def test_empty_block(self):
        assert scheduled_speedup([], 4) == 1.0


# -- property-based certification of the heuristics --------------------------


@settings(max_examples=200)
@given(sizes=job_lists, cores=core_counts)
def test_schedulers_respect_lower_bound(sizes, cores):
    lower = makespan_lower_bound(sizes, cores)
    assert list_schedule(sizes, cores).makespan >= lower - 1e-9
    assert lpt_schedule(sizes, cores).makespan >= lower - 1e-9


@settings(max_examples=100, deadline=None)
@given(sizes=job_lists, cores=core_counts)
def test_lpt_within_four_thirds_of_optimal(sizes, cores):
    """Graham's bound: LPT <= (4/3 - 1/(3m)) * OPT."""
    optimal = optimal_makespan(sizes, cores)
    lpt = lpt_schedule(sizes, cores).makespan
    bound = (4.0 / 3.0 - 1.0 / (3.0 * cores)) * optimal
    assert lpt <= bound + 1e-6


@settings(max_examples=100, deadline=None)
@given(sizes=job_lists, cores=core_counts)
def test_greedy_within_graham_bound(sizes, cores):
    """List scheduling <= (2 - 1/m) * OPT."""
    optimal = optimal_makespan(sizes, cores)
    greedy = list_schedule(sizes, cores).makespan
    assert greedy <= (2.0 - 1.0 / cores) * optimal + 1e-6


@settings(max_examples=100, deadline=None)
@given(sizes=job_lists, cores=core_counts)
def test_speedup_never_exceeds_eq2_bound(sizes, cores):
    """Realised scheduling never beats the paper's min(n, 1/l) bound."""
    total = sum(sizes)
    if total <= 0:
        return
    largest = max(sizes)
    speedup = scheduled_speedup(sizes, cores, policy="lpt")
    if largest > 0:
        assert speedup <= min(cores, total / largest) + 1e-9
    else:
        assert speedup <= cores + 1e-9
