"""Tests for the end-to-end analysis pipeline."""

from __future__ import annotations

import pytest

from repro.core.pipeline import (
    BlockRecord,
    ChainHistory,
    analyze_account_block,
    analyze_utxo_block,
    analyze_utxo_ledger,
)
from repro.core.metrics import compute_block_metrics
from repro.core.tdg import TDGResult


def _record(height, num_transactions=5, gas=0.0):
    tdg = TDGResult(
        groups=tuple((f"t{height}-{i}",) for i in range(num_transactions)),
        num_transactions=num_transactions,
    )
    return BlockRecord(
        height=height,
        timestamp=float(height),
        num_transactions=num_transactions,
        metrics=compute_block_metrics(tdg),
        gas_used=gas,
    )


class TestChainHistory:
    def test_append_requires_monotone_heights(self):
        history = ChainHistory(name="x", data_model="utxo")
        history.append(_record(0))
        with pytest.raises(ValueError):
            history.append(_record(0))

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            ChainHistory(name="x", data_model="graph")

    def test_non_empty_filter(self):
        history = ChainHistory(name="x", data_model="utxo")
        history.append(_record(0, num_transactions=0))
        history.append(_record(1, num_transactions=3))
        assert len(history.non_empty_records()) == 1

    def test_mean_transactions(self):
        history = ChainHistory(name="x", data_model="utxo")
        history.append(_record(0, num_transactions=2))
        history.append(_record(1, num_transactions=4))
        assert history.mean_transactions_per_block() == pytest.approx(3.0)


class TestBlockRecordWeights:
    def test_gas_weight_falls_back_to_tx_count(self):
        record = _record(0, num_transactions=7, gas=0.0)
        assert record.weight_gas == 7.0
        record_with_gas = _record(1, num_transactions=7, gas=420.0)
        assert record_with_gas.weight_gas == 420.0

    def test_total_transactions_includes_internal(self):
        record = BlockRecord(
            height=0,
            timestamp=0.0,
            num_transactions=10,
            metrics=_record(0).metrics,
            num_internal=25,
        )
        assert record.total_transactions == 35


class TestAnalyzeUTXO:
    def test_ledger_analysis_matches_per_block(self, small_bitcoin_ledger):
        history = analyze_utxo_ledger(small_bitcoin_ledger, name="btc")
        assert len(history) == len(small_bitcoin_ledger)
        block = small_bitcoin_ledger.block_at(20)
        record, tdg = analyze_utxo_block(
            block.transactions,
            height=block.height,
            timestamp=block.header.timestamp,
        )
        stored = history.records[20]
        assert stored.num_transactions == record.num_transactions
        assert stored.metrics.lcc_size == tdg.lcc_size

    def test_input_txo_counts_tracked(self, small_bitcoin_ledger):
        history = analyze_utxo_ledger(small_bitcoin_ledger, name="btc")
        busy = [r for r in history.records if r.num_transactions > 0]
        assert all(r.num_input_txos >= r.num_transactions * 0 for r in busy)
        assert any(r.num_input_txos > 0 for r in busy)

    def test_size_bytes_tracked(self, small_bitcoin_ledger):
        history = analyze_utxo_ledger(small_bitcoin_ledger, name="btc")
        assert all(r.size_bytes > 0 for r in history.records)


class TestAnalyzeAccount:
    def test_block_analysis_counts(self, small_ethereum_builder):
        block, executed = small_ethereum_builder.executed_blocks[-1]
        record, tdg = analyze_account_block(
            executed, height=block.height, timestamp=block.header.timestamp
        )
        regular = [i for i in executed if not i.is_coinbase]
        assert record.num_transactions == len(regular)
        assert record.num_internal == sum(
            i.receipt.trace_count for i in regular
        )
        assert record.gas_used == sum(i.gas_used for i in regular)
        assert tdg.num_transactions == record.num_transactions

    def test_gas_weights_feed_weighted_metrics(self, small_ethereum_builder):
        block, executed = small_ethereum_builder.executed_blocks[-1]
        record, _ = analyze_account_block(
            executed, height=block.height, timestamp=block.header.timestamp
        )
        assert record.metrics.total_weight == pytest.approx(record.gas_used)
