"""Golden regression: the pipeline must reproduce checked-in numbers.

``golden/chain_metrics.json`` holds the full per-block metrics of two
tiny fixed-seed chains (one UTXO, one account), serialised in a stable
format.  The tests regenerate the chains and assert the rendered JSON
matches the fixture *byte for byte*, under both the serial and the
process backends — so a future refactor of the workload builders, the
TDG, the metrics or the parallel fan-out cannot silently drift the
paper's numbers.

To regenerate the fixture after an *intentional* change::

    PYTHONPATH=src python tests/core/test_golden_regression.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.pipeline import BlockRecord, ChainHistory
from repro.workload.generator import generate_chain

GOLDEN_PATH = Path(__file__).parent / "golden" / "chain_metrics.json"

# Small and fixed forever: cheap to regenerate in every test run, rich
# enough (conflicts, internal txs, gas weighting) to catch drift.
GOLDEN_CHAINS = (
    ("bitcoin", dict(num_blocks=10, seed=2020, scale=0.2)),
    ("ethereum", dict(num_blocks=8, seed=2020, scale=0.4)),
)


def record_as_dict(record: BlockRecord) -> dict:
    metrics = record.metrics
    return {
        "height": record.height,
        "timestamp": record.timestamp,
        "num_transactions": record.num_transactions,
        "num_internal": record.num_internal,
        "num_input_txos": record.num_input_txos,
        "gas_used": record.gas_used,
        "size_bytes": record.size_bytes,
        "metrics": {
            "num_transactions": metrics.num_transactions,
            "num_conflicted": metrics.num_conflicted,
            "lcc_size": metrics.lcc_size,
            "total_weight": metrics.total_weight,
            "conflicted_weight": metrics.conflicted_weight,
            "lcc_weight": metrics.lcc_weight,
        },
    }


def history_as_dict(history: ChainHistory) -> dict:
    return {
        "name": history.name,
        "data_model": history.data_model,
        "start_year": history.start_year,
        "records": [record_as_dict(record) for record in history.records],
    }


def render_golden(**analyze_kwargs) -> str:
    """Build the golden chains and render their histories stably."""
    payload = {
        name: history_as_dict(
            generate_chain(name, **args, **analyze_kwargs).history
        )
        for name, args in GOLDEN_CHAINS
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class TestGoldenRegression:
    def test_fixture_exists(self):
        assert GOLDEN_PATH.is_file(), (
            "golden fixture missing — regenerate with "
            "`PYTHONPATH=src python tests/core/test_golden_regression.py"
            " --regen`"
        )

    def test_serial_backend_reproduces_fixture_bytes(self):
        assert render_golden(backend="serial") == GOLDEN_PATH.read_text()

    def test_process_backend_reproduces_fixture_bytes(self):
        assert (
            render_golden(backend="process", jobs=2, chunk_size=3)
            == GOLDEN_PATH.read_text()
        )

    def test_thread_backend_reproduces_fixture_bytes(self):
        assert (
            render_golden(backend="thread", jobs=3)
            == GOLDEN_PATH.read_text()
        )

    def test_fixture_is_nontrivial(self):
        payload = json.loads(GOLDEN_PATH.read_text())
        assert set(payload) == {"bitcoin", "ethereum"}
        eth = payload["ethereum"]["records"]
        assert any(r["metrics"]["num_conflicted"] > 0 for r in eth)
        assert any(r["num_internal"] > 0 for r in eth)
        assert any(r["gas_used"] > 0 for r in eth)
        btc = payload["bitcoin"]["records"]
        assert any(r["num_input_txos"] > 0 for r in btc)


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(render_golden(backend="serial"))
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
