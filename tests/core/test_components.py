"""Tests for connected-component algorithms (BFS of paper Fig. 3 + DSU)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import (
    UnionFind,
    build_adjacency,
    components_as_partition,
    connected_components_bfs,
    connected_components_union_find,
    largest_component_size,
    singleton_count,
)


def _graph(nodes, edges):
    return build_adjacency(nodes, edges)


class TestBuildAdjacency:
    def test_isolated_nodes_kept(self):
        adjacency = _graph(["a", "b"], [])
        assert adjacency == {"a": set(), "b": set()}

    def test_edges_are_undirected(self):
        adjacency = _graph(["a", "b"], [("a", "b")])
        assert "b" in adjacency["a"]
        assert "a" in adjacency["b"]

    def test_edge_endpoints_added_implicitly(self):
        adjacency = _graph([], [("x", "y")])
        assert set(adjacency) == {"x", "y"}

    def test_self_loops_add_no_neighbours(self):
        adjacency = _graph(["a"], [("a", "a")])
        assert adjacency["a"] == set()


class TestBFS:
    def test_chain_is_one_component(self):
        edges = [("a", "b"), ("b", "c"), ("c", "d")]
        components = connected_components_bfs(_graph("abcd", edges))
        assert largest_component_size(components) == 4

    def test_disjoint_components(self):
        edges = [("a", "b"), ("c", "d")]
        components = connected_components_bfs(_graph("abcde", edges))
        partition = components_as_partition(components)
        assert frozenset({"a", "b"}) in partition
        assert frozenset({"c", "d"}) in partition
        assert frozenset({"e"}) in partition

    def test_singleton_count(self):
        components = connected_components_bfs(
            _graph("abcd", [("a", "b")])
        )
        assert singleton_count(components) == 2

    def test_empty_graph(self):
        assert connected_components_bfs({}) == []
        assert largest_component_size([]) == 0

    def test_star_topology(self):
        edges = [("hub", f"leaf{i}") for i in range(10)]
        components = connected_components_bfs(_graph([], edges))
        assert len(components) == 1
        assert len(components[0]) == 11

    def test_components_cover_all_nodes_exactly_once(self):
        edges = [("a", "b"), ("b", "c"), ("d", "e")]
        components = connected_components_bfs(_graph("abcdef", edges))
        flat = [node for component in components for node in component]
        assert sorted(flat) == list("abcdef")


class TestUnionFind:
    def test_union_and_find(self):
        forest = UnionFind()
        forest.union("a", "b")
        forest.union("b", "c")
        assert forest.connected("a", "c")
        assert forest.component_size("a") == 3

    def test_disjoint_roots(self):
        forest = UnionFind()
        forest.union("a", "b")
        forest.add("z")
        assert not forest.connected("a", "z")

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("ghost")

    def test_groups(self):
        forest = UnionFind()
        forest.union("a", "b")
        forest.add("c")
        groups = {frozenset(group) for group in forest.groups()}
        assert groups == {frozenset({"a", "b"}), frozenset({"c"})}

    def test_idempotent_union(self):
        forest = UnionFind()
        forest.union("a", "b")
        forest.union("a", "b")
        assert forest.component_size("a") == 2
        assert len(forest) == 2


# -- property-based equivalence: paper BFS == union-find ---------------------

node_ids = st.integers(min_value=0, max_value=30)
edge_lists = st.lists(st.tuples(node_ids, node_ids), max_size=60)


@settings(max_examples=200)
@given(edges=edge_lists, extra_nodes=st.lists(node_ids, max_size=10))
def test_bfs_equals_union_find(edges, extra_nodes):
    """The paper's BFS and union-find induce identical partitions."""
    adjacency = build_adjacency(extra_nodes, edges)
    bfs = components_as_partition(connected_components_bfs(adjacency))
    dsu = components_as_partition(connected_components_union_find(adjacency))
    assert bfs == dsu


@settings(max_examples=100)
@given(edges=edge_lists)
def test_component_count_plus_edges_bounds_nodes(edges):
    """Each edge reduces the component count by at most one."""
    adjacency = build_adjacency([], edges)
    components = connected_components_bfs(adjacency)
    assert len(components) >= len(adjacency) - len(edges)
