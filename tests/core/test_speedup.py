"""Tests for the analytical speed-up models against the paper's numbers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import compute_block_metrics
from repro.core.speedup import (
    estimate_block_speedups,
    group_speedup_bound,
    group_speedup_with_overhead,
    informed_speedup,
    informed_time,
    speculative_speedup,
    speculative_speedup_exact,
    speculative_time,
    speculative_time_exact,
)
from repro.core.tdg import TDGResult


class TestEquationOne:
    def test_formula_matches_paper(self):
        """T' = floor(x/n) + 1 + c*x (Eq. 1's denominator)."""
        assert speculative_time(100, 8, 0.5) == math.floor(100 / 8) + 1 + 50

    def test_speedup_is_ratio(self):
        x, n, c = 100, 8, 0.2
        assert speculative_speedup(x, n, c) == pytest.approx(
            x / speculative_time(x, n, c)
        )

    def test_zero_conflict_many_cores_near_n(self):
        assert speculative_speedup(1000, 8, 0.0) == pytest.approx(
            1000 / (125 + 1)
        )

    def test_high_conflict_can_be_slower_than_sequential(self):
        """Fig. 10a: some speed-ups fall below 1x."""
        assert speculative_speedup(16, 4, 0.875) < 1.0

    def test_empty_block(self):
        assert speculative_speedup(0, 8, 0.0) == 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            speculative_speedup(10, 0, 0.5)
        with pytest.raises(ValueError):
            speculative_speedup(10, 4, 1.5)
        with pytest.raises(ValueError):
            speculative_speedup(-1, 4, 0.5)


class TestPaperWorkedExamples:
    """§V-A works the two Fig. 1 blocks through the model."""

    def test_block_1000007_speedup_5_over_3(self):
        # 5 txs, c = 0.4, n >= 5: phase one 1 unit, phase two 2 units.
        assert speculative_time_exact(5, 5, 0.4) == 3
        assert speculative_speedup_exact(5, 5, 0.4) == pytest.approx(5 / 3)

    def test_block_1000124_speedup_16_over_15(self):
        # 16 txs, c = 0.875, n >= 16: 1 + 14 = 15 units.
        assert speculative_time_exact(16, 16, 0.875) == 15
        assert speculative_speedup_exact(16, 16, 0.875) == pytest.approx(
            16 / 15
        )

    def test_block_1000124_8_to_15_cores_speedup_one(self):
        # "If between 8 and 15 cores are used, then the first phase takes
        # 2 units" -> 2 + 14 = 16 units, speed-up exactly 1.
        for cores in (8, 12, 15):
            assert speculative_speedup_exact(16, cores, 0.875) == pytest.approx(
                1.0
            )

    def test_block_1000124_fewer_cores_slower_than_sequential(self):
        assert speculative_speedup_exact(16, 4, 0.875) < 1.0


class TestInformedVariant:
    def test_informed_beats_speculative_at_high_conflict(self):
        x, n, c = 100, 8, 0.8
        assert informed_speedup(x, n, c, 0.0) > speculative_speedup(x, n, c)

    def test_preprocessing_cost_reduces_gain(self):
        x, n, c = 100, 8, 0.5
        assert informed_speedup(x, n, c, 20.0) < informed_speedup(x, n, c, 0.0)

    def test_time_formula(self):
        x, n, c, k = 100, 8, 0.5, 3.0
        expected = k + math.floor((1 - c) * x / n) + 1 + c * x
        assert informed_time(x, n, c, k) == pytest.approx(expected)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            informed_time(10, 4, 0.5, -1.0)


class TestEquationTwo:
    def test_bound_is_min_of_cores_and_inverse_l(self):
        assert group_speedup_bound(8, 0.5) == 2.0
        assert group_speedup_bound(8, 0.05) == 8.0

    def test_paper_headline_six_x(self):
        """~20% group conflict + 8 cores ==> ~5-6x (the paper's 6x claim)."""
        speedup = group_speedup_bound(8, 0.17)
        assert 5.0 <= speedup <= 6.5

    def test_64_cores_8x(self):
        """Fig. 10b: 64 cores with l=0.125 reaches 8x."""
        assert group_speedup_bound(64, 0.125) == pytest.approx(8.0)

    def test_zero_l_returns_core_count(self):
        assert group_speedup_bound(16, 0.0) == 16.0

    def test_overhead_corrected_variant(self):
        x, n, l, k = 100, 8, 0.2, 5.0
        expected = min(x / (x / n + k), x / (l * x + k))
        assert group_speedup_with_overhead(x, n, l, k) == pytest.approx(
            expected
        )

    def test_overhead_negligible_when_small(self):
        """§V-B: the K correction vanishes for K << x."""
        bound = group_speedup_bound(8, 0.2)
        corrected = group_speedup_with_overhead(10_000, 8, 0.2, 1.0)
        assert corrected == pytest.approx(bound, rel=0.01)


class TestEstimateBlockSpeedups:
    def _metrics(self):
        tdg = TDGResult(
            groups=(("a", "b", "c"), ("d",), ("e",), ("f",)),
            num_transactions=6,
        )
        return compute_block_metrics(tdg)

    def test_estimates_are_consistent(self):
        metrics = self._metrics()
        estimate = estimate_block_speedups(metrics, cores=8)
        assert estimate.speculative == pytest.approx(
            speculative_speedup(6, 8, 0.5)
        )
        assert estimate.group_bound == pytest.approx(
            group_speedup_bound(8, 0.5)
        )
        assert estimate.best >= estimate.speculative

    def test_weighted_variant_used_when_requested(self):
        tdg = TDGResult(groups=(("a", "b"), ("c",)), num_transactions=3)
        metrics = compute_block_metrics(tdg, weights={"c": 8.0})
        weighted = estimate_block_speedups(metrics, cores=4, weighted=True)
        plain = estimate_block_speedups(metrics, cores=4, weighted=False)
        assert weighted.group_bound != plain.group_bound


# -- property-based model sanity ----------------------------------------------


@settings(max_examples=200)
@given(
    x=st.integers(min_value=1, max_value=5000),
    n=st.integers(min_value=1, max_value=128),
    c=st.floats(min_value=0.0, max_value=1.0),
)
def test_more_cores_never_hurt_eq1(x, n, c):
    assert speculative_speedup(x, n + 1, c) >= speculative_speedup(x, n, c) - 1e-12


@settings(max_examples=200)
@given(
    n=st.integers(min_value=1, max_value=128),
    l=st.floats(min_value=0.001, max_value=1.0),
)
def test_eq2_bounded_by_both_limits(n, l):
    bound = group_speedup_bound(n, l)
    assert bound <= n + 1e-12
    assert bound <= 1.0 / l + 1e-9


@settings(max_examples=200)
@given(
    x=st.integers(min_value=1, max_value=2000),
    n=st.integers(min_value=1, max_value=64),
    c=st.floats(min_value=0.0, max_value=1.0),
)
def test_informed_never_slower_than_speculative_without_k(x, n, c):
    """With K=0, skipping the double execution can only help."""
    assert informed_time(x, n, c, 0.0) <= speculative_time(x, n, c) + 1e-9
