"""Tests for the approximate TDG (§V-C future work)."""

from __future__ import annotations

import pytest

from repro.account.receipts import ExecutedTransaction, Receipt
from repro.account.transaction import (
    InternalTransaction,
    make_account_transaction,
)
from repro.core.approx import (
    approximate_account_tdg,
    assess_approximation,
    assess_block,
    corrected_group_speedup,
)
from repro.core.tdg import TDGResult, account_tdg


def _executed(sender, receiver, internals=(), nonce=0):
    tx = make_account_transaction(
        sender=sender, receiver=receiver, value=1, nonce=nonce
    )
    receipt = Receipt(
        tx_hash=tx.tx_hash,
        success=True,
        gas_used=21_000,
        internal_transactions=tuple(internals),
    )
    return ExecutedTransaction(tx=tx, receipt=receipt)


def _bridged_block():
    """Two transactions that conflict only through an internal call."""
    bridge = InternalTransaction(sender="0xb", receiver="0xd", depth=2)
    return [
        _executed("0xa", "0xb", internals=[bridge]),
        _executed("0xc", "0xd"),
        _executed("0xe", "0xf"),
    ]


class TestApproximateTDG:
    def test_approximation_ignores_internal_edges(self):
        block = _bridged_block()
        true_tdg = account_tdg(block)
        approx = approximate_account_tdg(block)
        assert true_tdg.lcc_size == 2       # bridged via the internal call
        assert approx.lcc_size == 1         # approximation misses it
        assert approx.num_transactions == true_tdg.num_transactions

    def test_exact_when_no_internal_transactions(self):
        block = [
            _executed("0xa", "0xshared"),
            _executed("0xb", "0xshared"),
            _executed("0xc", "0xd"),
        ]
        quality = assess_block(block)
        assert quality.is_exact
        assert quality.pair_recall == 1.0
        assert quality.missed_pairs == 0


class TestAssessApproximation:
    def test_missed_pairs_counted(self):
        quality = assess_block(_bridged_block())
        assert quality.missed_pairs == 1    # the bridged pair
        assert quality.pair_recall == 0.0   # 0 of 1 conflicting pairs kept
        assert quality.true_lcc == 2
        assert quality.approx_lcc == 1
        assert quality.predicted_speedup_ratio == pytest.approx(2.0)

    def test_partial_recall(self):
        """A 3-tx group where the approximation keeps 2 together."""
        bridge = InternalTransaction(sender="0xhot", receiver="0xz", depth=2)
        block = [
            _executed("0xa", "0xhot"),
            _executed("0xb", "0xhot", internals=[bridge]),
            _executed("0xc", "0xz", nonce=0),
        ]
        quality = assess_block(block)
        # True group: all 3 (via hot + bridge to z). Approx: {a,b}, {c}.
        assert quality.true_lcc == 3
        assert quality.approx_lcc == 2
        assert quality.missed_pairs == 2
        assert quality.pair_recall == pytest.approx(1 / 3)

    def test_mismatched_transaction_sets_rejected(self):
        a = TDGResult(groups=(("t1",),), num_transactions=1)
        b = TDGResult(groups=(("t2",),), num_transactions=1)
        with pytest.raises(ValueError):
            assess_approximation(a, b)

    def test_non_refinement_rejected(self):
        true_tdg = TDGResult(
            groups=(("t1",), ("t2",)), num_transactions=2
        )
        bad_approx = TDGResult(
            groups=(("t1", "t2"),), num_transactions=2
        )
        with pytest.raises(ValueError):
            assess_approximation(true_tdg, bad_approx)


class TestCorrectedSpeedup:
    def test_exact_approximation_gives_full_speedup(self):
        block = [
            _executed("0xa", "0xs"),
            _executed("0xb", "0xs"),
            _executed("0xc", "0xd"),
            _executed("0xe", "0xf"),
        ]
        quality = assess_block(block)
        speedup = corrected_group_speedup(quality, cores=8)
        assert speedup == pytest.approx(4 / 2)  # x / true LCC

    def test_missed_pairs_reduce_speedup(self):
        quality = assess_block(_bridged_block())
        penalised = corrected_group_speedup(
            quality, cores=8, conflict_penalty=1.0
        )
        free = corrected_group_speedup(
            quality, cores=8, conflict_penalty=0.0
        )
        assert penalised < free

    def test_validation(self):
        quality = assess_block(_bridged_block())
        with pytest.raises(ValueError):
            corrected_group_speedup(quality, cores=0)
        with pytest.raises(ValueError):
            corrected_group_speedup(quality, cores=4, conflict_penalty=-1)


class TestOnRealWorkload:
    def test_quality_over_ethereum_blocks(self, small_ethereum_builder):
        """§V-C quantified: the approximation is good but imperfect."""
        qualities = []
        for _block, executed in small_ethereum_builder.executed_blocks:
            regular = [i for i in executed if not i.is_coinbase]
            if len(regular) < 10:
                continue
            qualities.append(assess_block(executed))
        assert qualities
        # Recall is high (most conflicts are visible at the top level)
        # but not perfect (proxy contracts hide some).
        mean_recall = sum(q.pair_recall for q in qualities) / len(qualities)
        assert mean_recall > 0.5
        # The approximation never merges what the truth separates.
        for quality in qualities:
            assert quality.approx_groups >= quality.true_groups
            assert quality.approx_lcc <= quality.true_lcc
