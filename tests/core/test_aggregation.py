"""Tests for weighted fixed-bucket aggregation (§IV's figure machinery)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import BucketedSeries, bucketize


def _items(values, weights=None, positions=None):
    weights = weights or [1.0] * len(values)
    positions = positions or list(range(len(values)))
    return list(zip(values, weights, positions))


def _bucketize(items, num_buckets):
    return bucketize(
        items,
        num_buckets=num_buckets,
        value=lambda item: item[0],
        weight=lambda item: item[1],
        position=lambda item: item[2],
    )


class TestBucketize:
    def test_single_bucket_is_weighted_mean(self):
        items = _items([1.0, 3.0], weights=[1.0, 3.0])
        series = _bucketize(items, 1)
        assert len(series) == 1
        assert series.values[0] == pytest.approx((1 + 9) / 4)

    def test_bucket_count_clamped_to_items(self):
        series = _bucketize(_items([1.0, 2.0]), 10)
        assert len(series) == 2

    def test_buckets_partition_in_order(self):
        items = _items(list(range(10)))
        series = _bucketize(items, 5)
        assert series.counts == (2, 2, 2, 2, 2)
        # First bucket averages items 0,1; last averages 8,9.
        assert series.values[0] == pytest.approx(0.5)
        assert series.values[-1] == pytest.approx(8.5)

    def test_positions_are_bucket_means(self):
        items = _items([0.0] * 4, positions=[10, 20, 30, 40])
        series = _bucketize(items, 2)
        assert series.positions == (15.0, 35.0)

    def test_zero_weight_bucket_falls_back_to_plain_mean(self):
        items = _items([2.0, 4.0], weights=[0.0, 0.0])
        series = _bucketize(items, 1)
        assert series.values[0] == pytest.approx(3.0)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            _bucketize([], 3)

    def test_non_positive_buckets_rejected(self):
        with pytest.raises(ValueError):
            _bucketize(_items([1.0]), 0)

    def test_heavier_blocks_dominate_their_bucket(self):
        """The paper's rationale: big blocks matter more (§IV)."""
        items = _items([0.0, 1.0], weights=[1.0, 99.0])
        series = _bucketize(items, 1)
        assert series.values[0] == pytest.approx(0.99)


class TestBucketedSeries:
    def test_field_length_validation(self):
        with pytest.raises(ValueError):
            BucketedSeries(
                positions=(1.0,), values=(1.0, 2.0), weights=(1.0,),
                counts=(1,),
            )

    def test_overall_mean(self):
        series = BucketedSeries(
            positions=(0.0, 1.0),
            values=(1.0, 3.0),
            weights=(1.0, 3.0),
            counts=(1, 1),
        )
        assert series.overall_mean == pytest.approx(2.5)

    def test_tail_mean(self):
        series = BucketedSeries(
            positions=(0.0, 1.0, 2.0),
            values=(9.0, 1.0, 2.0),
            weights=(1.0, 1.0, 1.0),
            counts=(1, 1, 1),
        )
        assert series.tail_mean(2) == pytest.approx(1.5)

    def test_tail_mean_validation(self):
        series = BucketedSeries(
            positions=(0.0,), values=(1.0,), weights=(1.0,), counts=(1,)
        )
        with pytest.raises(ValueError):
            series.tail_mean(0)


@settings(max_examples=200)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=60
    ),
    num_buckets=st.integers(min_value=1, max_value=20),
)
def test_bucket_means_stay_within_value_range(values, num_buckets):
    """Weighted means can never escape the input range."""
    items = _items(values)
    series = _bucketize(items, num_buckets)
    assert sum(series.counts) == len(values)
    for value in series.values:
        assert min(values) - 1e-9 <= value <= max(values) + 1e-9
