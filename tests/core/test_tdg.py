"""Tests for TDG construction in both data models (paper §III-A)."""

from __future__ import annotations

import pytest

from repro.account.receipts import ExecutedTransaction, Receipt
from repro.account.transaction import (
    InternalTransaction,
    make_account_transaction,
    make_coinbase_transaction,
)
from repro.core.tdg import (
    TDGResult,
    account_tdg,
    account_tdg_from_edges,
    storage_conflict_groups,
    utxo_tdg,
    utxo_tdg_from_arrays,
)
from repro.utxo.transaction import TxOutputSpec, make_coinbase, make_transaction
from repro.utxo.txo import COIN


class TestTDGResult:
    def test_group_coverage_enforced(self):
        with pytest.raises(ValueError):
            TDGResult(groups=(("a",),), num_transactions=2)

    def test_derived_counts(self):
        tdg = TDGResult(
            groups=(("a", "b", "c"), ("d",), ("e", "f")),
            num_transactions=6,
        )
        assert tdg.num_conflicted == 5
        assert tdg.lcc_size == 3
        assert tdg.group_sizes() == [3, 2, 1]
        assert tdg.group_of("e") == ("e", "f")

    def test_group_of_unknown(self):
        tdg = TDGResult(groups=(("a",),), num_transactions=1)
        with pytest.raises(KeyError):
            tdg.group_of("zz")


class TestUTXOTDG:
    def _chain_block(self):
        """Coinbase + A, B spends A, C independent."""
        cb = make_coinbase(reward=100 * COIN, miner="m", height=9)
        a = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=100 * COIN, owner="x")],
            nonce="a",
        )
        b = make_transaction(
            inputs=[a.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=100 * COIN, owner="y")],
            nonce="b",
        )
        c = make_transaction(
            inputs=(),
            outputs=[TxOutputSpec(value=1, owner="z")],
            nonce="c",
        )
        # c has no inputs, which would make it a coinbase; give it one
        # external input instead.
        c = make_transaction(
            inputs=[b.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=100 * COIN, owner="z")],
            nonce="c2",
        )
        return cb, a, b, c

    def test_intra_block_spend_creates_edge(self):
        cb, a, b, _ = self._chain_block()
        tdg = utxo_tdg([cb, a, b])
        assert tdg.num_transactions == 2
        assert tdg.lcc_size == 2
        assert tdg.num_conflicted == 2

    def test_coinbase_spend_is_not_an_edge_to_coinbase(self):
        """Spending the same-block coinbase: coinbase is ignored."""
        cb, a, _, _ = self._chain_block()
        tdg = utxo_tdg([cb, a])
        assert tdg.num_transactions == 1
        assert tdg.num_conflicted == 0

    def test_spend_of_prior_block_output_is_no_conflict(self):
        cb, a, b, c = self._chain_block()
        # Only c in this block; its input (b) is in an earlier block.
        tdg = utxo_tdg([c])
        assert tdg.num_conflicted == 0
        assert tdg.lcc_size == 1

    def test_full_chain_is_one_group(self):
        cb, a, b, c = self._chain_block()
        tdg = utxo_tdg([cb, a, b, c])
        assert tdg.lcc_size == 3

    def test_from_arrays_matches_paper_udf_interface(self):
        tdg = utxo_tdg_from_arrays(
            block_txs=["t1", "t2", "t3"],
            spending=["t2", "t3"],
            spent=["t1", "external"],
        )
        assert tdg.num_transactions == 3
        assert tdg.lcc_size == 2
        assert tdg.num_conflicted == 2

    def test_from_arrays_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            utxo_tdg_from_arrays(["a"], ["a"], [])


def _executed(sender, receiver, internals=(), nonce=0, reads=(), writes=(),
              value=1):
    tx = make_account_transaction(
        sender=sender, receiver=receiver, value=value, nonce=nonce
    )
    receipt = Receipt(
        tx_hash=tx.tx_hash,
        success=True,
        gas_used=21_000,
        internal_transactions=tuple(internals),
        storage_reads=frozenset(reads),
        storage_writes=frozenset(writes),
    )
    return ExecutedTransaction(tx=tx, receipt=receipt)


class TestAccountTDG:
    def test_shared_receiver_conflicts(self):
        """Fig. 1b's Poloniex pattern: fan-in to one address."""
        items = [
            _executed(f"0xu{i}", "0xexchange", nonce=i) for i in range(5)
        ]
        tdg = account_tdg(items)
        assert tdg.num_conflicted == 5
        assert tdg.lcc_size == 5

    def test_shared_sender_conflicts(self):
        """Fig. 1a's DwarfPool pattern: one sender, two receivers."""
        items = [
            _executed("0xpool", "0xr1", nonce=0),
            _executed("0xpool", "0xr2", nonce=1),
            _executed("0xother", "0xr3", nonce=0),
        ]
        tdg = account_tdg(items)
        assert tdg.num_conflicted == 2
        assert tdg.lcc_size == 2

    def test_internal_transactions_bridge_components(self):
        internal = InternalTransaction(
            sender="0xb", receiver="0xd", depth=2
        )
        items = [
            _executed("0xa", "0xb", internals=[internal]),
            _executed("0xc", "0xd", nonce=0),
        ]
        tdg = account_tdg(items)
        assert tdg.lcc_size == 2

    def test_coinbase_excluded(self):
        cb = make_coinbase_transaction(miner="0xm", reward=1, height=0)
        cb_item = ExecutedTransaction(
            tx=cb,
            receipt=Receipt(tx_hash=cb.tx_hash, success=True, gas_used=0),
        )
        items = [cb_item, _executed("0xa", "0xb")]
        tdg = account_tdg(items)
        assert tdg.num_transactions == 1

    def test_address_components_exposed(self):
        items = [_executed("0xa", "0xb"), _executed("0xc", "0xd")]
        tdg = account_tdg(items)
        partition = {frozenset(c) for c in tdg.address_components}
        assert frozenset({"0xa", "0xb"}) in partition

    def test_empty_edge_list_is_isolated(self):
        tdg = account_tdg_from_edges({"t1": [], "t2": []})
        assert tdg.num_transactions == 2
        assert tdg.num_conflicted == 0


class TestStorageConflictAblation:
    def test_same_address_different_keys_do_not_conflict(self):
        """The §III-A5 distinction from ref. [17]: storage-level is finer."""
        items = [
            _executed(
                "0xa", "0xtoken", nonce=0, value=0,
                writes=[("0xtoken", "k1")],
            ),
            _executed(
                "0xb", "0xtoken", nonce=0, value=0,
                writes=[("0xtoken", "k2")],
            ),
        ]
        address_level = account_tdg(items)
        storage_level = storage_conflict_groups(items)
        assert address_level.num_conflicted == 2   # shared receiver
        assert storage_level.num_conflicted == 0   # disjoint locations

    def test_write_write_conflicts(self):
        items = [
            _executed("0xa", "0xt", nonce=0, value=0, writes=[("0xt", "k")]),
            _executed("0xb", "0xt", nonce=0, value=0, writes=[("0xt", "k")]),
        ]
        assert storage_conflict_groups(items).num_conflicted == 2

    def test_read_write_conflicts(self):
        items = [
            _executed("0xa", "0xt", nonce=0, value=0, writes=[("0xt", "k")]),
            _executed("0xb", "0xu", nonce=0, value=0, reads=[("0xt", "k")]),
        ]
        assert storage_conflict_groups(items).num_conflicted == 2

    def test_balance_transfers_conflict_via_shared_party(self):
        items = [
            _executed("0xa", "0xshared", nonce=0),
            _executed("0xb", "0xshared", nonce=0),
        ]
        assert storage_conflict_groups(items).num_conflicted == 2

    def test_storage_never_exceeds_address_level(self, small_ethereum_builder):
        """Address-level TDG finds at least as many conflicts (§III-A5)."""
        for _block, executed in small_ethereum_builder.executed_blocks[-10:]:
            address_level = account_tdg(executed)
            storage_level = storage_conflict_groups(executed)
            assert (
                storage_level.num_conflicted <= address_level.num_conflicted
            )
