"""Tests for intra-transaction concurrency analysis (§VII)."""

from __future__ import annotations

import pytest

from repro.account.receipts import ExecutedTransaction, Receipt
from repro.account.transaction import (
    InternalTransaction,
    make_account_transaction,
)
from repro.core.intratx import (
    analyze_intra_tx,
    block_intra_tx_potential,
    build_call_tree,
)


def _executed(internals, sender="0xa", receiver="0xapp"):
    tx = make_account_transaction(
        sender=sender, receiver=receiver, value=0, nonce=0,
        gas_limit=500_000,
    )
    receipt = Receipt(
        tx_hash=tx.tx_hash,
        success=True,
        gas_used=50_000,
        internal_transactions=tuple(internals),
    )
    return ExecutedTransaction(tx=tx, receipt=receipt)


def _call(sender, receiver, depth):
    return InternalTransaction(sender=sender, receiver=receiver, depth=depth)


class TestCallTree:
    def test_plain_transfer_is_single_node(self):
        tree = build_call_tree(_executed([]))
        assert not tree.children
        assert tree.total_work() == 1.0
        assert tree.critical_path() == 1.0

    def test_depth_nesting(self):
        internals = [
            _call("0xapp", "0xb", 2),
            _call("0xb", "0xc", 3),
            _call("0xapp", "0xd", 2),
        ]
        tree = build_call_tree(_executed(internals))
        assert len(tree.children) == 2
        assert len(tree.children[0].children) == 1
        assert tree.total_work() == 4.0

    def test_subtree_addresses(self):
        internals = [_call("0xapp", "0xb", 2), _call("0xb", "0xc", 3)]
        tree = build_call_tree(_executed(internals))
        assert tree.subtree_addresses() == {"0xapp", "0xb", "0xc"}


class TestCriticalPath:
    def test_independent_fan_out_parallelises(self):
        """Calls to disjoint receivers can all run concurrently."""
        internals = [_call("0xapp", f"0xsink{i}", 2) for i in range(8)]
        result = analyze_intra_tx(_executed(internals))
        assert result.total_work == 9.0
        assert result.critical_path == 2.0  # root + one parallel layer
        assert result.speedup_potential == pytest.approx(4.5)

    def test_shared_receiver_serialises(self):
        """Two calls into the same contract must run one after another."""
        internals = [
            _call("0xapp", "0xshared", 2),
            _call("0xapp", "0xshared", 2),
        ]
        result = analyze_intra_tx(_executed(internals))
        assert result.critical_path == 3.0  # root + two serialised calls
        assert result.speedup_potential == pytest.approx(1.0)

    def test_deep_chain_is_sequential(self):
        chain = ["0xapp", "0xb", "0xc", "0xd"]
        internals = [
            _call(chain[i], chain[i + 1], depth=i + 2)
            for i in range(len(chain) - 1)
        ]
        result = analyze_intra_tx(_executed(internals))
        assert result.is_sequential
        assert result.critical_path == result.total_work

    def test_mixed_tree(self):
        """A chain plus an independent branch: path = root + chain."""
        internals = [
            _call("0xapp", "0xb", 2),
            _call("0xb", "0xc", 3),
            _call("0xapp", "0xindependent", 2),
        ]
        result = analyze_intra_tx(_executed(internals))
        assert result.total_work == 4.0
        assert result.critical_path == 3.0  # root -> b -> c
        assert result.speedup_potential == pytest.approx(4 / 3)


class TestBlockPotential:
    def test_empty_block(self):
        assert block_intra_tx_potential([]) == 1.0

    def test_transfers_only_block_has_no_potential(self):
        block = [_executed([], sender=f"0xs{i}") for i in range(5)]
        assert block_intra_tx_potential(block) == pytest.approx(1.0)

    def test_fan_out_block_has_potential(self):
        wide = _executed(
            [_call("0xapp", f"0xsink{i}", 2) for i in range(8)]
        )
        assert block_intra_tx_potential([wide]) > 2.0

    def test_on_real_workload(self, small_ethereum_builder):
        """The synthetic Ethereum workload has measurable intra-tx
        concurrency (multi-call apps) — the paper's §VII conjecture."""
        potentials = []
        for _block, executed in small_ethereum_builder.executed_blocks:
            regular = [i for i in executed if not i.is_coinbase]
            if len(regular) >= 10:
                potentials.append(block_intra_tx_potential(executed))
        assert potentials
        mean_potential = sum(potentials) / len(potentials)
        assert 1.0 < mean_potential < 4.0
