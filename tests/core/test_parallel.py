"""Equivalence harness for the parallel block-analysis backend.

The purity contract of :mod:`repro.core.parallel` — per-block analysis
reads only that block's transactions — implies a strong invariant: the
serial, thread and process backends must produce *equal*
``BlockRecord`` sequences for every chain, worker count and chunk size.
These tests enforce the invariant on seeded-random UTXO and account
chains, exercise the chunking helpers, and pin down the clear-error
contract (``ValueError`` on bad ``jobs`` / ``backend`` instead of a raw
traceback).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import (
    build_adjacency,
    components_as_partition,
    connected_components_bfs,
    connected_components_union_find,
)
from repro.core.parallel import (
    BACKENDS,
    BlockInput,
    account_block_inputs,
    analyze_chain,
    chunk_bounds,
    default_chunk_size,
    utxo_block_inputs,
    validate_backend,
    validate_chunk_size,
    validate_jobs,
)
from repro.core.pipeline import analyze_account_blocks, analyze_utxo_ledger
from repro.workload.account_workload import build_account_chain
from repro.workload.profiles import BITCOIN, ETHEREUM
from repro.workload.utxo_workload import build_utxo_chain


def _serial_records(inputs, data_model):
    history = analyze_chain(
        inputs, data_model=data_model, name="ref", backend="serial"
    )
    return history.records


# -- chunking helpers ---------------------------------------------------------


class TestChunking:
    def test_bounds_cover_range_exactly(self):
        for num_blocks in (0, 1, 5, 17, 100):
            for chunk_size in (1, 3, 7, 100):
                bounds = chunk_bounds(num_blocks, chunk_size)
                covered = [
                    i for start, stop in bounds for i in range(start, stop)
                ]
                assert covered == list(range(num_blocks))

    def test_bounds_respect_chunk_size(self):
        bounds = chunk_bounds(17, 5)
        assert bounds == [(0, 5), (5, 10), (10, 15), (15, 17)]

    def test_default_chunk_size_balances_workers(self):
        # ~4 chunks per worker, never below one block per chunk.
        assert default_chunk_size(1000, 4) == 63
        assert default_chunk_size(3, 8) == 1
        assert default_chunk_size(0, 4) == 1

    @given(
        num_blocks=st.integers(min_value=0, max_value=500),
        chunk_size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_partition_property(self, num_blocks, chunk_size):
        bounds = chunk_bounds(num_blocks, chunk_size)
        assert sum(stop - start for start, stop in bounds) == num_blocks
        for (_, stop_a), (start_b, _) in zip(bounds, bounds[1:]):
            assert stop_a == start_b


# -- argument validation ------------------------------------------------------


class TestValidation:
    def test_unknown_backend_is_a_clear_value_error(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            validate_backend("gpu")

    @pytest.mark.parametrize("jobs", [0, -1, -100])
    def test_jobs_below_one_rejected(self, jobs):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            validate_jobs(jobs)

    def test_non_integer_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be an integer"):
            validate_jobs(2.5)  # type: ignore[arg-type]

    def test_jobs_defaults(self):
        assert validate_jobs(None, backend="serial") == 1
        assert validate_jobs(None, backend="process") >= 1
        assert validate_jobs(3, backend="process") == 3

    @pytest.mark.parametrize("chunk_size", [0, -2])
    def test_chunk_size_below_one_rejected(self, chunk_size):
        with pytest.raises(ValueError, match="chunk_size must be >= 1"):
            validate_chunk_size(chunk_size, num_blocks=10, jobs=2)

    def test_analyze_chain_rejects_bad_args(self, small_bitcoin_ledger):
        with pytest.raises(ValueError, match="unknown backend"):
            analyze_chain(
                small_bitcoin_ledger, data_model="utxo", name="btc",
                backend="warp",
            )
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            analyze_chain(
                small_bitcoin_ledger, data_model="utxo", name="btc",
                jobs=0,
            )
        with pytest.raises(ValueError, match="unknown data model"):
            analyze_chain([], data_model="nosql", name="x")

    def test_pipeline_entry_points_propagate_the_error(
        self, small_bitcoin_ledger, small_ethereum_builder
    ):
        with pytest.raises(ValueError, match="unknown backend"):
            analyze_utxo_ledger(
                small_bitcoin_ledger, name="btc", backend="warp"
            )
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            analyze_account_blocks(
                small_ethereum_builder.executed_blocks, name="eth",
                backend="process", jobs=-3,
            )


# -- backend equivalence on the shared fixtures -------------------------------


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("jobs,chunk_size", [
        (1, None), (2, 1), (3, 7), (2, 1000),
    ])
    def test_utxo_records_identical(
        self, small_bitcoin_ledger, backend, jobs, chunk_size
    ):
        inputs = utxo_block_inputs(small_bitcoin_ledger)
        reference = _serial_records(inputs, "utxo")
        history = analyze_chain(
            inputs, data_model="utxo", name="btc", backend=backend,
            jobs=jobs, chunk_size=chunk_size,
        )
        assert history.records == reference

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("jobs,chunk_size", [(2, None), (3, 4)])
    def test_account_records_identical(
        self, small_ethereum_builder, backend, jobs, chunk_size
    ):
        inputs = account_block_inputs(small_ethereum_builder.executed_blocks)
        reference = _serial_records(inputs, "account")
        history = analyze_chain(
            inputs, data_model="account", name="eth", backend=backend,
            jobs=jobs, chunk_size=chunk_size,
        )
        assert history.records == reference

    def test_histories_match_ledger_order_and_metadata(
        self, small_bitcoin_ledger
    ):
        history = analyze_chain(
            small_bitcoin_ledger, data_model="utxo", name="btc",
            start_year=2009.0, backend="process", jobs=2,
        )
        assert history.name == "btc"
        assert history.start_year == 2009.0
        heights = [record.height for record in history.records]
        assert heights == sorted(heights)
        assert len(history) == len(small_bitcoin_ledger)

    def test_empty_chain(self):
        for backend in BACKENDS:
            history = analyze_chain(
                [], data_model="utxo", name="empty", backend=backend,
                jobs=2,
            )
            assert history.records == []


# -- seeded-random equivalence across fresh chains ----------------------------


class TestSeededRandomEquivalence:
    """Property-style: fresh seeds, both data models, varied fan-out."""

    @pytest.mark.parametrize("seed", [1, 11, 42])
    def test_random_utxo_chains(self, seed):
        ledger = build_utxo_chain(
            BITCOIN, num_blocks=12, seed=seed, scale=0.15
        )
        inputs = utxo_block_inputs(ledger)
        reference = _serial_records(inputs, "utxo")
        for backend, jobs, chunk_size in [
            ("process", 2, None), ("process", 4, 3), ("thread", 3, 5),
        ]:
            history = analyze_chain(
                inputs, data_model="utxo", name=f"btc-{seed}",
                backend=backend, jobs=jobs, chunk_size=chunk_size,
            )
            assert history.records == reference, (backend, jobs, chunk_size)

    @pytest.mark.parametrize("seed", [5, 23])
    def test_random_account_chains(self, seed):
        builder = build_account_chain(
            ETHEREUM, num_blocks=8, seed=seed, scale=0.3
        )
        inputs = account_block_inputs(builder.executed_blocks)
        reference = _serial_records(inputs, "account")
        for backend, jobs, chunk_size in [
            ("process", 3, 2), ("thread", 2, None),
        ]:
            history = analyze_chain(
                inputs, data_model="account", name=f"eth-{seed}",
                backend=backend, jobs=jobs, chunk_size=chunk_size,
            )
            assert history.records == reference, (backend, jobs, chunk_size)

    def test_block_inputs_are_pure_snapshots(self, small_bitcoin_ledger):
        # Re-deriving inputs from the same ledger gives equal payloads:
        # nothing in a BlockInput aliases mutable builder state.
        first = utxo_block_inputs(small_bitcoin_ledger)
        second = utxo_block_inputs(small_bitcoin_ledger)
        assert first == second
        assert all(isinstance(item, BlockInput) for item in first)


# -- component-algorithm equivalence (the TDG's substrate) --------------------


def _partitions(nodes, edges):
    adjacency = build_adjacency(nodes, edges)
    bfs = components_as_partition(connected_components_bfs(adjacency))
    dsu = components_as_partition(
        connected_components_union_find(adjacency)
    )
    return bfs, dsu


class TestComponentEquivalence:
    """BFS (paper Fig. 3) and union-find induce the same partition."""

    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=60,
        ),
        extra_nodes=st.sets(
            st.integers(min_value=0, max_value=40), max_size=10
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_graphs(self, edges, extra_nodes):
        bfs, dsu = _partitions(extra_nodes, edges)
        assert bfs == dsu

    def test_structured_graphs(self):
        cases = [
            # sweep chain (paper Fig. 6 shape)
            ([], [(i, i + 1) for i in range(18)]),
            # exchange fan-in star (paper Fig. 1b shape)
            ([], [(0, i) for i in range(1, 16)]),
            # two cliques plus isolated nodes
            (
                [100, 101],
                [(a, b) for a in range(5) for b in range(a + 1, 5)]
                + [(a, b) for a in range(10, 14) for b in range(a + 1, 14)],
            ),
            # self loops only
            ([1, 2, 3], [(1, 1), (2, 2)]),
        ]
        for nodes, edges in cases:
            bfs, dsu = _partitions(nodes, edges)
            assert bfs == dsu


# -- observability across process boundaries ----------------------------------


class TestProcessBackendObservability:
    """Worker registries must fold into the parent at join: the
    per-block analysis metrics recorded inside process workers match a
    serial run exactly (counters sum, histograms merge), closing the
    process-backend blind spot."""

    @pytest.fixture(scope="class")
    def inputs(self, small_bitcoin_ledger):
        return utxo_block_inputs(small_bitcoin_ledger)

    def _snapshot(self, inputs, backend, jobs):
        from repro import obs

        with obs.instrumented() as state:
            analyze_chain(
                inputs, data_model="utxo", name="btc", backend=backend,
                jobs=jobs, chunk_size=3,
            )
            return state.registry.snapshot(), state.recorder.events()

    @pytest.mark.parametrize("backend,jobs", [
        ("thread", 3), ("process", 3),
    ])
    def test_per_block_metrics_match_serial(self, inputs, backend, jobs):
        serial, _ = self._snapshot(inputs, "serial", 1)
        parallel, _ = self._snapshot(inputs, backend, jobs)
        # Every analysis-domain counter the serial run records must
        # come back identical through the worker merge; the parallel
        # run only ADDS its own pipeline.parallel.* family.
        for key, value in serial["counters"].items():
            assert parallel["counters"].get(key) == value, key
        extra = set(parallel["counters"]) - set(serial["counters"])
        assert all(k.startswith("pipeline.parallel.") for k in extra)
        for key, summary in serial["histograms"].items():
            merged = parallel["histograms"].get(key)
            assert merged is not None, key
            assert merged["count"] == summary["count"]
            assert merged["sum"] == pytest.approx(summary["sum"])

    def test_process_run_records_chunk_timeline(self, inputs):
        _, events = self._snapshot(inputs, "process", 3)
        chunk_events = [
            e for e in events if e.executor == "pipeline.process"
        ]
        assert chunk_events, "no chunk timeline recorded"
        # One schedule/start/commit triple per chunk, lanes keyed by
        # worker first-appearance.
        kinds = {e.kind for e in chunk_events}
        assert kinds == {"schedule", "start", "commit"}
        commits = [e for e in chunk_events if e.kind == "commit"]
        assert len(commits) == len(chunk_bounds(len(inputs), 3))
        assert all(e.lane >= 0 for e in commits)

    def test_worker_dump_merge_is_exact_for_counts(self, inputs):
        # analyze_chunk keeps its public 2-tuple contract while the
        # pool path ships ChunkResult dumps; both must agree on totals.
        from repro.core.parallel import analyze_chunk

        records, elapsed = analyze_chunk("utxo", inputs[:3])
        assert len(records) == 3
        assert elapsed >= 0.0
