"""Registry lint reports and exit-code conventions."""

from __future__ import annotations

from repro.staticcheck.lint import lint_registry, render_lint_report
from repro.vm.contract import CodeRegistry, TOKEN_TRANSFER_ASM
from repro.vm.opcodes import Instruction, Op


def make_registry() -> CodeRegistry:
    registry = CodeRegistry()
    registry.register_assembly("token", TOKEN_TRANSFER_ASM)
    registry.register(
        "broken", (Instruction(op=Op.POP, operand=None),)
    )
    registry.register_assembly(
        "widened", "push 1\nsload n\nsstore $\nstop"
    )
    return registry


def test_lint_counts_errors_and_warnings():
    report = lint_registry(make_registry())
    assert [c.code_id for c in report.contracts] == [
        "broken", "token", "widened",
    ]
    assert report.num_errors == 1
    assert report.num_warnings == 1
    by_id = {c.code_id: c for c in report.contracts}
    assert by_id["token"].clean
    assert by_id["broken"].num_errors == 1
    assert by_id["widened"].top_widened


def test_exit_codes():
    report = lint_registry(make_registry())
    assert report.exit_code() == 1           # has errors
    clean = lint_registry(make_registry(), code_ids=["token"])
    assert clean.exit_code() == 0
    warned = lint_registry(make_registry(), code_ids=["widened"])
    assert warned.exit_code() == 0
    assert warned.exit_code(strict=True) == 1


def test_code_ids_subset_and_unknown_ids_skipped():
    report = lint_registry(
        make_registry(), code_ids=["token", "missing"]
    )
    assert [c.code_id for c in report.contracts] == ["token"]


def test_render_report_mentions_diagnostics():
    text = render_lint_report(lint_registry(make_registry()))
    assert "stack underflow" in text
    assert "widened to ⊤" in text
    assert "3 contract(s) checked: 1 error(s), 1 warning(s)" in text
    assert "token (11 instructions): clean" in text
