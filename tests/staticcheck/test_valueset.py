"""Unit tests for the bounded value-set slot domain.

Covers canonical normalization (:func:`from_values`), join behaviour of
both lattice policies, the termination argument (finite per-slot join
chains), constant folding, branch decisions and storage-key
enumeration.  Soundness of the whole interpreter over this domain is
property-tested in ``test_soundness_property.py``.
"""

from __future__ import annotations

import pytest

from repro.staticcheck.lattice import TOP, Const
from repro.staticcheck.valueset import (
    CONST_LATTICE,
    MAX_ENUMERATED_KEYS,
    MAX_FOLD_ELEMENTS,
    MAX_INTERVAL_COUNT,
    MAX_SET_SIZE,
    VALUESET_LATTICE,
    StridedInterval,
    ValueSet,
    elements_of,
    from_values,
    get_lattice,
)


class TestFromValues:
    def test_empty_is_top(self):
        assert from_values(()) is TOP

    def test_singleton_is_const(self):
        assert from_values([7]) == Const(7)
        assert from_values(["key_a", "key_a"]) == Const("key_a")

    def test_small_set(self):
        value = from_values([1, "payee_b"])
        assert value == ValueSet(frozenset({1, "payee_b"}))

    def test_set_bound_is_tight(self):
        at_bound = from_values(range(MAX_SET_SIZE))
        assert isinstance(at_bound, ValueSet)
        over = from_values(range(MAX_SET_SIZE + 1))
        assert isinstance(over, StridedInterval)

    def test_interval_uses_gcd_stride(self):
        value = from_values(range(0, 40, 4))  # 10 members, stride 4
        assert value == StridedInterval(lo=0, hi=36, stride=4)
        assert elements_of(value) == frozenset(range(0, 40, 4))

    def test_mixed_symbols_beyond_set_bound_widen(self):
        members = [*range(MAX_SET_SIZE), "key_a"]
        assert from_values(members) is TOP

    def test_interval_count_bound(self):
        dense = from_values(range(MAX_INTERVAL_COUNT + 1))
        assert dense is TOP
        sparse = from_values(range(0, MAX_INTERVAL_COUNT * 2, 2))
        assert isinstance(sparse, StridedInterval)
        assert sparse.count == MAX_INTERVAL_COUNT


class TestJoin:
    def test_join_is_exact_while_small(self):
        joined = VALUESET_LATTICE.join(Const("payee_a"), Const("payee_b"))
        assert joined == ValueSet(frozenset({"payee_a", "payee_b"}))

    def test_const_lattice_widens_distinct_values(self):
        assert CONST_LATTICE.join(Const(1), Const(2)) is TOP
        assert CONST_LATTICE.join(Const(1), Const(1)) == Const(1)

    def test_top_absorbs(self):
        assert VALUESET_LATTICE.join(TOP, Const(1)) is TOP
        assert VALUESET_LATTICE.join(Const(1), TOP) is TOP

    def test_join_is_commutative_and_idempotent(self):
        a = from_values([1, 2, 3])
        b = from_values([3, 4])
        assert VALUESET_LATTICE.join(a, b) == VALUESET_LATTICE.join(b, a)
        assert VALUESET_LATTICE.join(a, a) == a

    def test_join_chain_terminates(self):
        """Per-slot join chains reach a fixpoint in bounded steps."""
        value = VALUESET_LATTICE.join(Const(0), Const(1))
        steps = 0
        current = value
        for nxt in range(2, 10_000):
            joined = VALUESET_LATTICE.join(current, Const(nxt))
            if joined == current:
                continue
            current = joined
            steps += 1
            if current is TOP:
                break
        assert current is TOP
        assert steps <= MAX_SET_SIZE + MAX_INTERVAL_COUNT + 2

    def test_join_stacks_slotwise(self):
        a = (Const(1), Const("k"))
        b = (Const(2), Const("k"))
        joined = VALUESET_LATTICE.join_stacks(a, b)
        assert joined == (ValueSet(frozenset({1, 2})), Const("k"))
        assert VALUESET_LATTICE.join_stacks(a, (Const(1),)) is None
        assert VALUESET_LATTICE.join_stacks(None, a) is None


class TestTransfer:
    def test_fold_cartesian_product(self):
        lhs = from_values([10, 20])
        rhs = from_values([1, 2])
        folded = VALUESET_LATTICE.fold(lambda a, b: a + b, lhs, rhs)
        assert elements_of(folded) == frozenset({11, 12, 21, 22})

    def test_fold_symbol_operand_widens(self):
        assert (
            VALUESET_LATTICE.fold(lambda a, b: a + b, Const("k"), Const(1))
            is TOP
        )

    def test_fold_product_bound(self):
        lhs = from_values(range(0, MAX_FOLD_ELEMENTS, 2))
        rhs = from_values([0, 1, 2])
        assert len(elements_of(lhs) or ()) * 3 > MAX_FOLD_ELEMENTS
        assert VALUESET_LATTICE.fold(lambda a, b: a + b, lhs, rhs) is TOP

    def test_iszero(self):
        assert VALUESET_LATTICE.iszero(Const(0)) == Const(1)
        assert VALUESET_LATTICE.iszero(Const(5)) == Const(0)
        mixed = VALUESET_LATTICE.iszero(from_values([0, 3]))
        assert elements_of(mixed) == frozenset({0, 1})
        assert VALUESET_LATTICE.iszero(TOP) is TOP

    def test_branch_decision(self):
        assert VALUESET_LATTICE.branch(Const(0)) is False
        assert VALUESET_LATTICE.branch(Const(7)) is True
        assert VALUESET_LATTICE.branch(from_values([1, 2])) is True
        assert VALUESET_LATTICE.branch(from_values([0, 1])) is None
        assert VALUESET_LATTICE.branch(TOP) is None


class TestEnumerateKeys:
    def test_const_resolves_under_both_lattices(self):
        for lattice in (CONST_LATTICE, VALUESET_LATTICE):
            assert lattice.enumerate_keys(Const("slot7")) == ("slot7",)

    def test_sets_resolve_only_under_valueset(self):
        routed = from_values(["payee_a", "payee_b"])
        assert VALUESET_LATTICE.enumerate_keys(routed) == (
            "payee_a", "payee_b",
        )
        assert CONST_LATTICE.enumerate_keys(routed) is None

    def test_short_intervals_enumerate(self):
        interval = from_values(range(0, MAX_ENUMERATED_KEYS * 4, 4))
        assert isinstance(interval, StridedInterval)
        keys = VALUESET_LATTICE.enumerate_keys(interval)
        assert keys == tuple(
            str(v) for v in range(0, MAX_ENUMERATED_KEYS * 4, 4)
        )

    def test_long_intervals_widen(self):
        interval = from_values(range(MAX_ENUMERATED_KEYS + 1))
        assert isinstance(interval, StridedInterval)
        assert VALUESET_LATTICE.enumerate_keys(interval) is None

    def test_top_widens(self):
        assert VALUESET_LATTICE.enumerate_keys(TOP) is None


class TestRegistry:
    def test_get_lattice_by_name_and_passthrough(self):
        assert get_lattice("const") is CONST_LATTICE
        assert get_lattice("valueset") is VALUESET_LATTICE
        assert get_lattice(VALUESET_LATTICE) is VALUESET_LATTICE

    def test_get_lattice_unknown(self):
        with pytest.raises(ValueError, match="unknown lattice"):
            get_lattice("octagon")
