"""Predicted access sets, conflicts, TDGs, and task expansion."""

from __future__ import annotations

from repro.account.transaction import (
    make_account_transaction,
    make_coinbase_transaction,
)
from repro.execution.engine import TxTask
from repro.staticcheck.interproc import ContractAnalyzer
from repro.staticcheck.predict import (
    PredictedAccess,
    expanded_tasks,
    predict_block,
    predict_transaction,
    predicted_conflicts,
    predicted_tdg,
    unknown_access,
)
from repro.vm.contract import CodeRegistry


def make_analyzer(bodies: dict[str, str], bindings: dict[str, str]):
    registry = CodeRegistry()
    for code_id, text in bodies.items():
        registry.register_assembly(code_id, text)
    return ContractAnalyzer(registry, bindings)


def tx(sender: str, receiver: str, value: int = 1, nonce: int = 0):
    return make_account_transaction(
        sender=sender, receiver=receiver, value=value, nonce=nonce
    )


def test_plain_transfer_predicts_balance_writes_only():
    analyzer = make_analyzer({}, {})
    prediction = predict_transaction(tx("alice", "bob"), analyzer)
    assert prediction.writes == {
        "balance:alice", "balance:bob",
    }
    assert prediction.reads == frozenset()
    assert not prediction.is_widened


def test_contract_call_adds_closed_storage_access():
    analyzer = make_analyzer(
        {"token": "sload k\npush 1\nadd\nsstore k\nstop"},
        {"tok": "token"},
    )
    prediction = predict_transaction(tx("alice", "tok"), analyzer)
    assert "storage:tok:k" in prediction.reads
    assert "storage:tok:k" in prediction.writes
    assert "balance:alice" in prediction.writes


def test_widened_contract_sets_wildcards():
    analyzer = make_analyzer(
        {
            "counter": "sload n\npush 1\nadd\nsstore n\npush 7\nsload n\n"
                       "sstore $\nstop",
        },
        {"cc": "counter"},
    )
    prediction = predict_transaction(tx("alice", "cc"), analyzer)
    assert prediction.write_wild == frozenset({"cc"})
    assert not prediction.global_top
    assert "cc" in prediction.write_addrs


def test_dynamic_transfer_collapses_to_global_top():
    analyzer = make_analyzer(
        {"payout": "sload payee\ntransfer $ 3\nstop"},
        {"pp": "payout"},
    )
    prediction = predict_transaction(tx("alice", "pp"), analyzer)
    assert prediction.global_top


def test_predict_block_skips_coinbase():
    analyzer = make_analyzer({}, {})
    transactions = [
        make_coinbase_transaction(miner="m", reward=5, height=1),
        tx("alice", "bob"),
    ]
    predictions = predict_block(transactions, analyzer)
    assert len(predictions) == 1
    assert predictions[0].tx_hash == transactions[1].tx_hash


def test_concrete_conflict_rules():
    a = PredictedAccess(tx_hash="a", writes=frozenset({"balance:x"}))
    b = PredictedAccess(tx_hash="b", writes=frozenset({"balance:x"}))
    c = PredictedAccess(tx_hash="c", reads=frozenset({"balance:x"}))
    d = PredictedAccess(tx_hash="d", writes=frozenset({"balance:y"}))
    assert predicted_conflicts(a, b)       # write/write
    assert predicted_conflicts(a, c)       # write/read
    assert not predicted_conflicts(a, d)   # disjoint


def test_wildcard_conflicts_by_address():
    wild = PredictedAccess(
        tx_hash="w",
        write_wild=frozenset({"cc"}),
        write_addrs=frozenset({"cc"}),
    )
    touches = PredictedAccess(
        tx_hash="t",
        reads=frozenset({"storage:cc:slot"}),
        read_addrs=frozenset({"cc"}),
    )
    elsewhere = PredictedAccess(
        tx_hash="e",
        writes=frozenset({"storage:dd:slot"}),
        write_addrs=frozenset({"dd"}),
    )
    assert predicted_conflicts(wild, touches)
    assert predicted_conflicts(touches, wild)  # symmetric
    assert not predicted_conflicts(wild, elsewhere)


def test_global_top_conflicts_with_everything():
    top = unknown_access("t")
    other = PredictedAccess(tx_hash="o")
    assert predicted_conflicts(top, other)
    assert predicted_conflicts(other, top)


def test_read_wild_only_conflicts_with_writes():
    reader = PredictedAccess(
        tx_hash="r",
        read_wild=frozenset({"cc"}),
        read_addrs=frozenset({"cc"}),
    )
    other_reader = PredictedAccess(
        tx_hash="o",
        reads=frozenset({"storage:cc:k"}),
        read_addrs=frozenset({"cc"}),
    )
    writer = PredictedAccess(
        tx_hash="w",
        writes=frozenset({"storage:cc:k"}),
        write_addrs=frozenset({"cc"}),
    )
    assert not predicted_conflicts(reader, other_reader)
    assert predicted_conflicts(reader, writer)


def test_predicted_tdg_groups_by_conflict():
    a = PredictedAccess(tx_hash="a", writes=frozenset({"balance:x"}))
    b = PredictedAccess(tx_hash="b", writes=frozenset({"balance:x"}))
    c = PredictedAccess(tx_hash="c", writes=frozenset({"balance:z"}))
    tdg = predicted_tdg([a, b, c])
    assert tdg.num_transactions == 3
    assert tdg.num_conflicted == 2
    assert tdg.lcc_size == 2


def test_covers_task_handles_wildcards():
    prediction = PredictedAccess(
        tx_hash="p",
        writes=frozenset({"balance:alice"}),
        write_wild=frozenset({"cc"}),
        write_addrs=frozenset({"cc"}),
    )
    task = TxTask(
        tx_hash="p",
        writes=frozenset({"balance:alice", "storage:cc:anything"}),
    )
    assert prediction.covers_task(task)
    uncovered = TxTask(tx_hash="p", writes=frozenset({"balance:bob"}))
    assert not prediction.covers_task(uncovered)


def test_expanded_tasks_agree_with_predicted_conflicts():
    predictions = [
        PredictedAccess(
            tx_hash="w",
            write_wild=frozenset({"cc"}),
            write_addrs=frozenset({"cc"}),
        ),
        PredictedAccess(
            tx_hash="t",
            reads=frozenset({"storage:cc:slot"}),
            read_addrs=frozenset({"cc"}),
        ),
        PredictedAccess(
            tx_hash="e",
            writes=frozenset({"storage:dd:slot"}),
            write_addrs=frozenset({"dd"}),
        ),
        unknown_access("g"),
    ]
    tasks = {
        task.tx_hash: task for task in expanded_tasks(predictions)
    }
    for i, a in enumerate(predictions):
        for b in predictions[i + 1:]:
            expected = predicted_conflicts(a, b)
            actual = tasks[a.tx_hash].conflicts_with(tasks[b.tx_hash])
            assert actual == expected, (a.tx_hash, b.tx_hash)


def test_expanded_tasks_use_given_costs():
    predictions = [PredictedAccess(tx_hash="a")]
    (task,) = expanded_tasks(predictions, costs={"a": 2.5})
    assert task.cost == 2.5
