"""Abstract interpretation: one unit test per widening/transfer rule."""

from __future__ import annotations

from repro.staticcheck.absint import analyze_program
from repro.staticcheck.diagnostics import (
    JUMP_RANGE,
    STACK_UNDERFLOW,
    TOP_WIDENED,
    UNREACHABLE,
)
from repro.staticcheck.lattice import (
    TOP,
    Const,
    MaySet,
    join_stack,
    join_value,
)
from repro.vm.contract import (
    CONST_INDEXED_ASM,
    DYNAMIC_COUNTER_ASM,
    TOGGLE_BRANCH_ASM,
    TOKEN_TRANSFER_ASM,
    assemble,
)
from repro.vm.opcodes import Instruction, Op


def codes(summary):
    return [d.code for d in summary.diagnostics]


# -- lattice joins ----------------------------------------------------------


def test_joining_different_constants_widens_to_top():
    assert join_value(Const(1), Const(1)) == Const(1)
    assert join_value(Const(1), Const(2)) is TOP
    assert join_value(Const("a"), TOP) is TOP


def test_joining_stacks_of_different_heights_is_unknown():
    assert join_stack((Const(1),), (Const(1),)) == (Const(1),)
    assert join_stack((Const(1),), (Const(1), Const(2))) is None
    assert join_stack(None, (Const(1),)) is None


def test_mayset_widening_absorbs_items():
    widened = MaySet().add("a").widen()
    assert widened.top
    assert widened.add("b").top
    assert widened.covers("anything")


# -- static keys stay precise ----------------------------------------------


def test_static_keys_collected_exactly():
    summary = analyze_program(assemble(TOKEN_TRANSFER_ASM))
    assert summary.storage_reads.items == {
        "balance_sender", "balance_receiver",
    }
    assert summary.storage_writes.items == {
        "balance_sender", "balance_receiver",
    }
    assert not summary.storage_writes.top
    assert summary.diagnostics == ()


def test_constant_propagation_resolves_dynamic_keys():
    summary = analyze_program(assemble(CONST_INDEXED_ASM))
    assert summary.storage_reads.items == {"slot7"}
    assert summary.storage_writes.items == {"slot7"}
    assert not summary.top_widened
    assert summary.diagnostics == ()


# -- dynamic-operand widening ----------------------------------------------


def test_non_constant_dynamic_key_widens_to_top():
    summary = analyze_program(assemble(DYNAMIC_COUNTER_ASM))
    assert summary.storage_writes.top
    assert TOP_WIDENED in codes(summary)


def test_non_constant_call_target_widens():
    summary = analyze_program(
        assemble("sload payee\ntransfer $ 3\nstop")
    )
    assert summary.has_unknown_transfer_target
    assert summary.top_widened
    assert TOP_WIDENED in codes(summary)


def test_constant_call_target_resolves():
    # The VM resolves dynamic targets via str(); PUSH operands are
    # ints, so a constant 777 resolves to the address string "777".
    summary = analyze_program(
        assemble("push 777\ncall $ 0\nstop")
    )
    (site,) = summary.calls
    assert site.target == "777"
    assert not summary.top_widened


def test_arithmetic_on_non_constants_yields_top():
    # sload pushes ⊤; adding a constant keeps ⊤, so the sstore key is ⊤.
    # (Stack: [value=5, 1, ⊤] → add → [5, ⊤] → sstore pops key ⊤.)
    summary = analyze_program(
        assemble("push 5\npush 1\nsload k\nadd\nsstore $\nstop")
    )
    assert summary.storage_writes.top


def test_arithmetic_constant_folding_matches_vm():
    # The VM computes lhs OP rhs with rhs popped first:
    # (10 - 4) // 3 = 2 → precise key "2" (value 9 beneath).
    summary = analyze_program(
        assemble("push 9\npush 10\npush 4\nsub\npush 3\ndiv\nsstore $\nstop")
    )
    assert summary.storage_writes.items == {"2"}
    assert not summary.storage_writes.top


# -- branch handling --------------------------------------------------------


def test_non_constant_jumpi_takes_both_arms():
    summary = analyze_program(assemble(TOGGLE_BRANCH_ASM))
    assert summary.storage_writes.items == {"flag", "key_a", "key_b"}
    assert UNREACHABLE not in codes(summary)


def test_constant_false_guard_marks_branch_unreachable():
    # push 0 → jumpi never taken → target block is dead.
    program = assemble("push 0\njumpi 4\npush 1\nstop\npush 2\nstop")
    summary = analyze_program(program)
    unreachable = [
        d for d in summary.diagnostics if d.code == UNREACHABLE
    ]
    assert len(unreachable) == 1
    assert unreachable[0].pc == 4
    # The dead branch's effects are excluded from the summary.
    assert summary.storage_writes.items == set()


def test_constant_true_guard_marks_fallthrough_unreachable():
    program = assemble("push 1\njumpi 4\nsstore dead\nstop\nstop")
    summary = analyze_program(program)
    assert UNREACHABLE in codes(summary)
    assert summary.storage_writes.items == set()


# -- diagnostics ------------------------------------------------------------


def test_guaranteed_underflow_is_an_error():
    summary = analyze_program((Instruction(op=Op.POP, operand=None),))
    (diagnostic,) = summary.errors
    assert diagnostic.code == STACK_UNDERFLOW
    assert "stack underflow" in diagnostic.message


def test_underflow_not_reported_when_height_unknown():
    # Two paths reach pc 4 with different stack heights, so the POP
    # there cannot be *proven* to underflow — no diagnostic.
    program = (
        Instruction(op=Op.PUSH, operand=1),      # 0
        Instruction(op=Op.JUMPI, operand=4),     # 1 (condition ⊤? no: 1)
        Instruction(op=Op.PUSH, operand=2),      # 2
        Instruction(op=Op.PUSH, operand=3),      # 3
        Instruction(op=Op.POP, operand=None),    # 4
        Instruction(op=Op.STOP, operand=None),   # 5
    )
    # Make the condition non-constant so both paths are live.
    program = (
        Instruction(op=Op.SLOAD, operand="c"),   # 0: pushes ⊤
        Instruction(op=Op.JUMPI, operand=4),     # 1
        Instruction(op=Op.PUSH, operand=2),      # 2
        Instruction(op=Op.PUSH, operand=3),      # 3
        Instruction(op=Op.POP, operand=None),    # 4: height 0 or 2 here
        Instruction(op=Op.STOP, operand=None),   # 5
    )
    summary = analyze_program(program)
    assert not any(d.code == STACK_UNDERFLOW for d in summary.diagnostics)


def test_reachable_out_of_range_jump_is_error():
    program = (Instruction(op=Op.JUMP, operand=42),)
    summary = analyze_program(program)
    assert [d.code for d in summary.errors] == [JUMP_RANGE]


def test_dead_out_of_range_jump_subsumed_by_unreachable():
    program = (
        Instruction(op=Op.STOP, operand=None),
        Instruction(op=Op.JUMP, operand=42),
    )
    summary = analyze_program(program)
    assert summary.errors == ()
    assert UNREACHABLE in codes(summary)


def test_dead_code_behind_unconditional_jump():
    program = (
        Instruction(op=Op.JUMP, operand=2),
        Instruction(op=Op.SSTORE, operand="dead"),
        Instruction(op=Op.STOP, operand=None),
    )
    summary = analyze_program(program)
    assert UNREACHABLE in codes(summary)
    assert summary.storage_writes.items == set()


def test_analyzer_is_total_over_malformed_operands():
    # Hand-built garbage that the assembler would reject must still
    # produce a summary, not an exception.
    program = (
        Instruction(op=Op.PUSH, operand=object()),
        Instruction(op=Op.CALL, operand="not-a-tuple"),
        Instruction(op=Op.STOP, operand=None),
    )
    summary = analyze_program(program)
    (site,) = summary.calls
    assert site.target is None  # widened, not crashed


def test_loop_fixpoint_terminates_and_covers_effects():
    # Decrementing loop with a storage write inside the body.
    program = assemble(
        "push 5\n"      # 0
        "dup\n"         # 1 <- loop head
        "iszero\n"      # 2
        "jumpi 9\n"     # 3
        "push 1\n"      # 4
        "sstore hits\n" # 5
        "push 1\n"      # 6
        "sub\n"         # 7
        "jump 1\n"      # 8
        "stop"          # 9
    )
    summary = analyze_program(program)
    assert summary.storage_writes.items == {"hits"}
    assert summary.errors == ()


# -- value-set resolution of branch-joined operands -------------------------


def test_branch_joined_keys_resolve_under_valueset():
    # Each arm pushes a different key; the dynamic sstore consumes the
    # join.  The value-set lattice keeps the exact two-element set.
    program = assemble(
        "push 1\n"      # the value to store
        "sload flag\n"
        "jumpi 5\n"
        "push key_a\n"
        "jump 6\n"
        "push key_b\n"
        "sstore $\n"
        "stop"
    )
    summary = analyze_program(program, lattice="valueset")
    assert summary.storage_writes.items == {"key_a", "key_b"}
    assert not summary.storage_writes.top
    assert summary.resolved_sites == frozenset({6})
    assert summary.widened_sites == frozenset()
    assert TOP_WIDENED not in codes(summary)


def test_branch_joined_keys_widen_under_const():
    program = assemble(
        "push 1\n"      # the value to store
        "sload flag\n"
        "jumpi 5\n"
        "push key_a\n"
        "jump 6\n"
        "push key_b\n"
        "sstore $\n"
        "stop"
    )
    summary = analyze_program(program, lattice="const")
    assert summary.storage_writes.top
    assert summary.widened_sites == frozenset({6})
    assert TOP_WIDENED in codes(summary)


def test_multi_target_call_site_resolves_under_valueset():
    from repro.vm.contract import routed_call_asm

    summary = analyze_program(
        assemble(routed_call_asm("sink_a", "sink_b")), lattice="valueset"
    )
    (site,) = summary.calls
    assert site.target is None          # no single-target view
    assert site.targets == ("sink_a", "sink_b")
    assert not summary.has_unknown_call_target
    assert not summary.top_widened


def test_multi_target_call_site_widens_under_const():
    from repro.vm.contract import routed_call_asm

    summary = analyze_program(
        assemble(routed_call_asm("sink_a", "sink_b")), lattice="const"
    )
    (site,) = summary.calls
    assert site.targets is None
    assert summary.has_unknown_call_target
    assert summary.top_widened


def test_single_target_site_keeps_single_target_view():
    summary = analyze_program(
        assemble("push 777\ncall $ 0\nstop"), lattice="valueset"
    )
    (site,) = summary.calls
    assert site.target == "777"
    assert site.targets == ("777",)
