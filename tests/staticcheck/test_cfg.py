"""CFG construction: leaders, successors, and jump-range findings."""

from __future__ import annotations

import pytest

from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.diagnostics import JUMP_RANGE
from repro.vm.contract import assemble
from repro.vm.opcodes import Instruction, Op


def test_straight_line_program_is_one_block():
    program = assemble("push 1\nsstore key\nstop")
    cfg = build_cfg(program)
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].start == 0
    assert cfg.blocks[0].end == 3
    assert cfg.blocks[0].successors == ()
    assert cfg.diagnostics == ()


def test_empty_program_has_no_blocks():
    cfg = build_cfg(())
    assert cfg.blocks == ()
    assert cfg.entry is None


def test_jumpi_splits_blocks_and_adds_both_edges():
    # 0: push 1; 1: jumpi 4; 2: push 2; 3: stop; 4: stop
    program = assemble("push 1\njumpi 4\npush 2\nstop\nstop")
    cfg = build_cfg(program)
    starts = [block.start for block in cfg.blocks]
    assert starts == [0, 2, 4]
    entry = cfg.block_starting_at(0)
    assert set(entry.successors) == {4, 2}
    assert cfg.block_starting_at(2).successors == ()


def test_unconditional_jump_has_single_edge():
    program = assemble("jump 2\npush 1\nstop")
    cfg = build_cfg(program)
    assert cfg.block_starting_at(0).successors == (2,)


def test_out_of_range_jump_yields_error_and_no_edge():
    program = (Instruction(op=Op.JUMP, operand=99),)
    cfg = build_cfg(program)
    assert cfg.blocks[0].successors == ()
    assert len(cfg.diagnostics) == 1
    diagnostic = cfg.diagnostics[0]
    assert diagnostic.code == JUMP_RANGE
    assert diagnostic.is_error
    assert "out of range" in diagnostic.message


def test_fall_through_block_links_to_next_leader():
    # jump target at 3 makes pc 3 a leader; the straight-line block
    # [1, 3) falls through into it.
    program = assemble("jumpi 3\npush 1\npop\nstop")
    # pc0 jumpi needs a condition: hand-build instead.
    program = (
        Instruction(op=Op.PUSH, operand=1),
        Instruction(op=Op.JUMPI, operand=4),
        Instruction(op=Op.PUSH, operand=2),
        Instruction(op=Op.POP, operand=None),
        Instruction(op=Op.STOP, operand=None),
    )
    cfg = build_cfg(program)
    middle = cfg.block_starting_at(2)
    assert middle.successors == (4,)


def test_block_starting_at_raises_for_non_leader():
    cfg = build_cfg(assemble("push 1\npop\nstop"))
    with pytest.raises(KeyError):
        cfg.block_starting_at(1)
