"""Incremental re-analysis: cache equivalence, hits, and invalidation.

The contract under test is the acceptance criterion of the incremental
layer: analysis through :class:`IncrementalAnalyzer` must be
*observationally identical* to a from-scratch
:class:`ContractAnalyzer` run at every point in a registry's growth
history, while re-analysis after growth reuses every closure whose
dependency digest is unchanged.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.staticcheck.incremental import (
    CacheStats,
    IncrementalAnalyzer,
    program_digest,
)
from repro.staticcheck.interproc import ContractAnalyzer
from repro.vm.contract import (
    CodeRegistry,
    TOKEN_TRANSFER_ASM,
    proxy_asm,
    routed_call_asm,
)


def build_registry() -> tuple[CodeRegistry, dict[str, str]]:
    """A registry with independent, chained and routed contracts."""
    registry = CodeRegistry()
    registry.register_assembly("token", TOKEN_TRANSFER_ASM)
    registry.register_assembly("sink", "push 1\nsstore hits\nstop")
    registry.register_assembly("proxy", proxy_asm("0xaaa"))
    registry.register_assembly(
        "routed", routed_call_asm("0xaaa", "0xbbb")
    )
    bindings = {
        "0xaaa": "sink",
        "0xbbb": "sink",
        "0xccc": "proxy",
        "0xddd": "routed",
        "0xeee": "token",
    }
    return registry, bindings


def test_program_digest_tracks_bytecode():
    registry, _ = build_registry()
    token = registry.get("token")
    sink = registry.get("sink")
    assert token is not None and sink is not None
    assert program_digest(token) == program_digest(token)
    assert program_digest(token) != program_digest(sink)


def test_incremental_matches_from_scratch():
    registry, bindings = build_registry()
    incremental = IncrementalAnalyzer(registry, bindings)
    oracle = ContractAnalyzer(registry, bindings)
    for address in bindings:
        assert incremental.closed_access(address) == (
            oracle.closed_access(address)
        )
    # Summaries agree too (modulo caching identity).
    for code_id in registry.code_ids():
        assert incremental.summary(code_id) == oracle.summary(code_id)


def test_growth_only_change_hits_cache():
    registry, bindings = build_registry()
    analyzer = IncrementalAnalyzer(registry, bindings)
    first = analyzer.analyze_all()
    assert analyzer.stats.closure_hits == 0
    assert analyzer.stats.invalidated == 0

    # Grow the registry by a contract nobody calls: every existing
    # closure's dependency digest is unchanged.
    registry.register_assembly("late", "push 9\nsstore nine\nstop")
    analyzer.bind("0xfff", "late")
    second = analyzer.analyze_all()

    assert analyzer.stats.closure_hits >= len(bindings)
    assert analyzer.stats.invalidated == 0
    for address in bindings:
        assert second[address] == first[address]
    oracle = ContractAnalyzer(
        registry, {**bindings, "0xfff": "late"}
    )
    for address in {**bindings, "0xfff": "late"}:
        assert second[address] == oracle.closed_access(address)


def test_binding_reachable_address_invalidates_dependents():
    """Binding code at an address a contract already calls must
    invalidate the caller's closure (its callee set changed)."""
    registry = CodeRegistry()
    registry.register_assembly("caller", proxy_asm("0x123"))
    bindings = {"0xabc": "caller"}
    analyzer = IncrementalAnalyzer(registry, bindings)
    before = analyzer.closed_access("0xabc")
    # 0x123 has no code yet: the call is a plain transfer, endpoint only.
    assert ("0x123", "hits") not in before.storage_writes

    registry.register_assembly("sink", "push 1\nsstore hits\nstop")
    analyzer.bind("0x123", "sink")
    after = analyzer.closed_access("0xabc")
    assert analyzer.stats.invalidated >= 1
    assert ("0x123", "hits") in after.storage_writes
    oracle = ContractAnalyzer(registry, {**bindings, "0x123": "sink"})
    assert after == oracle.closed_access("0xabc")


def test_cache_stats_counters_mirror_obs():
    registry, bindings = build_registry()
    with obs.instrumented() as state:
        analyzer = IncrementalAnalyzer(registry, bindings)
        analyzer.analyze_all()
        analyzer.analyze_all()
    snapshot = state.registry.snapshot()["counters"]
    assert snapshot["staticcheck.cache.closure_misses"] == (
        analyzer.stats.closure_misses
    )
    assert snapshot["staticcheck.cache.closure_hits"] == (
        analyzer.stats.closure_hits
    )
    assert analyzer.stats.closure_hits >= len(bindings)


def test_cache_stats_as_dict_round_trip():
    stats = CacheStats(
        summary_hits=1, summary_misses=2, closure_hits=3,
        closure_misses=4, invalidated=5,
    )
    assert stats.as_dict() == {
        "summary_hits": 1, "summary_misses": 2, "closure_hits": 3,
        "closure_misses": 4, "invalidated": 5,
    }


# -- property: growth history equivalence ------------------------------

_BODIES = (
    TOKEN_TRANSFER_ASM,
    "push 1\nsstore hits\nstop",
    proxy_asm("0xa0"),
    proxy_asm("0xa1"),
    routed_call_asm("0xa0", "0xa1"),
    "sload n\npush 1\nadd\nsstore n\nstop",
)


@settings(max_examples=60, deadline=None)
@given(
    order=st.permutations(range(len(_BODIES))),
    cutoffs=st.sets(
        st.integers(min_value=1, max_value=len(_BODIES) - 1), max_size=3
    ),
)
def test_property_growth_equals_from_scratch(order, cutoffs):
    """Growing the registry one contract at a time, the incremental
    analyzer's closures equal a from-scratch analysis at every step."""
    registry = CodeRegistry()
    analyzer = IncrementalAnalyzer(registry)
    bindings: dict[str, str] = {}
    for step, body_index in enumerate(order, start=1):
        code_id = f"c{body_index}"
        address = f"0xa{body_index}"
        registry.register_assembly(code_id, _BODIES[body_index])
        analyzer.bind(address, code_id)
        bindings[address] = code_id
        if step in cutoffs or step == len(order):
            fresh = ContractAnalyzer(registry, bindings)
            for bound in bindings:
                assert analyzer.closed_access(bound) == (
                    fresh.closed_access(bound)
                )
