"""The soundness property: static access sets cover runtime traces.

For any syntactically valid program, the interprocedural closure of the
receiver contract must cover *every* location the VM actually touches —
storage reads (including BALANCE's ``__balance__`` cells), storage
writes, and internal-transaction endpoints.  This holds even for
transactions that fail mid-execution: a partial trace is a prefix of
some concrete path, and the abstract interpretation over-approximates
all paths.

This is the property that makes the predicted TDG's recall exactly 1.0
in ``benchmarks/bench_static_conflict.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.account.state import WorldState
from repro.account.transaction import make_account_transaction
from repro.chain.errors import ChainError
from repro.staticcheck.incremental import IncrementalAnalyzer
from repro.staticcheck.interproc import ContractAnalyzer
from repro.vm.contract import CodeRegistry
from repro.vm.opcodes import STACK_OPERAND, Instruction, Op
from repro.vm.vm import VM

ETHER = 10**18
MAIN = "0xmain"
CALLEE = "0xcallee"
PLAIN = "0xplain"

# A benign contract so CALLs from the fuzzed program exercise the
# interprocedural closure, not just intraprocedural effects.
CALLEE_ASM = "push 1\nsstore hits\ntransfer 0xsink 0\nstop"

_operandless = [
    Op.POP, Op.DUP, Op.SWAP, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.LT,
    Op.EQ, Op.ISZERO, Op.LOG, Op.STOP, Op.REVERT,
]


def _instruction_strategy():
    operandless = st.sampled_from(_operandless).map(
        lambda op: Instruction(op=op)
    )
    push = st.integers(min_value=-8, max_value=8).map(
        lambda n: Instruction(op=Op.PUSH, operand=n)
    )
    jump = st.tuples(
        st.sampled_from([Op.JUMP, Op.JUMPI]),
        st.integers(min_value=0, max_value=24),
    ).map(lambda pair: Instruction(op=pair[0], operand=pair[1]))
    # Storage keys: static symbols plus the dynamic `$` form, which the
    # analyzer must widen to the executing contract's storage ⊤.
    storage = st.tuples(
        st.sampled_from([Op.SLOAD, Op.SSTORE, Op.BALANCE]),
        st.sampled_from(["k0", "k1", STACK_OPERAND]),
    ).map(lambda pair: Instruction(op=pair[0], operand=pair[1]))
    call = st.tuples(
        st.sampled_from([Op.CALL, Op.TRANSFER]),
        st.sampled_from([CALLEE, PLAIN, STACK_OPERAND]),
        st.integers(min_value=0, max_value=3),
    ).map(
        lambda triple: Instruction(
            op=triple[0], operand=(triple[1], triple[2])
        )
    )
    return st.one_of(operandless, push, jump, storage, call)


programs = st.lists(_instruction_strategy(), min_size=1, max_size=25)


@pytest.mark.parametrize("lattice", ["const", "valueset"])
@settings(max_examples=250, deadline=None)
@given(program=programs)
def test_static_set_covers_dynamic_trace(lattice, program):
    registry = CodeRegistry()
    registry.register("fuzz", tuple(program))
    registry.register_assembly("callee", CALLEE_ASM)

    state = WorldState()
    state.account(MAIN).code_id = "fuzz"
    state.account(CALLEE).code_id = "callee"
    state.credit("0xuser", 10 * ETHER)
    state.credit(MAIN, 1000)
    state.credit(CALLEE, 1000)

    analyzer = ContractAnalyzer(
        registry, {MAIN: "fuzz", CALLEE: "callee"}, lattice=lattice
    )
    closed = analyzer.closed_access(MAIN)

    vm = VM(registry)
    tx = make_account_transaction(
        sender="0xuser",
        receiver=MAIN,
        value=0,
        nonce=0,
        gas_limit=200_000,
    )
    try:
        result = state.apply_transaction(tx, executor=vm.execute_transaction)
    except ChainError:
        return  # nothing executed, nothing to cover
    receipt = result.receipt

    for address, key in receipt.storage_reads:
        assert closed.covers_read(address, key), (
            f"uncovered read ({address}, {key})"
        )
    for address, key in receipt.storage_writes:
        assert closed.covers_write(address, key), (
            f"uncovered write ({address}, {key})"
        )
    for itx in receipt.internal_transactions:
        assert closed.covers_endpoint(itx.sender), (
            f"uncovered internal sender {itx.sender}"
        )
        assert closed.covers_endpoint(itx.receiver), (
            f"uncovered internal receiver {itx.receiver}"
        )


@settings(max_examples=200, deadline=None)
@given(program=programs)
def test_analyzer_is_total(program):
    """The analyzer never raises on any syntactic program."""
    registry = CodeRegistry()
    registry.register("fuzz", tuple(program))
    analyzer = ContractAnalyzer(registry, {MAIN: "fuzz"})
    closed = analyzer.closed_access(MAIN)
    # The closure is queryable regardless of how degenerate the program is.
    closed.covers_read(MAIN, "k0")
    closed.covers_endpoint(MAIN)


@settings(max_examples=200, deadline=None)
@given(program=programs)
def test_incremental_analysis_matches_from_scratch(program):
    """Growing the registry one contract at a time, the cached
    incremental closures equal a from-scratch analysis — for any
    fuzzed program, including ones that call the shared callee."""
    registry = CodeRegistry()
    incremental = IncrementalAnalyzer(registry)

    registry.register_assembly("callee", CALLEE_ASM)
    incremental.bind(CALLEE, "callee")
    incremental.closed_access(CALLEE)  # prime the cache pre-growth

    registry.register("fuzz", tuple(program))
    incremental.bind(MAIN, "fuzz")

    fresh = ContractAnalyzer(registry, {MAIN: "fuzz", CALLEE: "callee"})
    for address in (MAIN, CALLEE):
        assert incremental.closed_access(address) == (
            fresh.closed_access(address)
        )
