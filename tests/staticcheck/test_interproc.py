"""Interprocedural closure over the contract call graph."""

from __future__ import annotations

from repro.account.state import WorldState
from repro.staticcheck.interproc import (
    ClosedAccess,
    ContractAnalyzer,
    code_bindings,
)
from repro.vm.contract import CodeRegistry


def make_analyzer(bodies: dict[str, str], bindings: dict[str, str]):
    registry = CodeRegistry()
    for code_id, text in bodies.items():
        registry.register_assembly(code_id, text)
    return ContractAnalyzer(registry, bindings)


def test_code_bindings_reads_world_state():
    state = WorldState()
    state.account("aa").code_id = "token"
    state.account("bb").code_id = ""
    state.credit("cc", 5)
    assert code_bindings(state) == {"aa": "token"}


def test_closure_follows_proxy_chain():
    analyzer = make_analyzer(
        {
            "proxy": "call hop 0\nstop",
            "hop": "call db 0\nstop",
            "db": "push 1\nsstore hits\nstop",
        },
        {"proxy": "proxy", "hop": "hop", "db": "db"},
    )
    closed = analyzer.closed_access("proxy")
    assert ("db", "hits") in closed.storage_writes
    assert {"proxy", "hop", "db"} <= set(closed.internal_endpoints)
    assert not closed.is_top_widened


def test_call_cycle_converges():
    analyzer = make_analyzer(
        {
            "a": "push 1\nsstore ka\ncall bb 0\nstop",
            "b": "push 1\nsstore kb\ncall aa 0\nstop",
        },
        {"aa": "a", "bb": "b"},
    )
    closed_a = analyzer.closed_access("aa")
    closed_b = analyzer.closed_access("bb")
    assert ("aa", "ka") in closed_a.storage_writes
    assert ("bb", "kb") in closed_a.storage_writes
    assert closed_a.storage_writes == closed_b.storage_writes


def test_dynamic_call_target_escalates_to_global_top():
    analyzer = make_analyzer(
        {"evil": "sload t\ncall $ 0\nstop"},
        {"ee": "evil"},
    )
    closed = analyzer.closed_access("ee")
    assert closed.global_top
    assert closed.covers_write("anyone", "anything")
    assert closed.covers_endpoint("anyone")


def test_dynamic_transfer_target_widens_balances_not_global():
    analyzer = make_analyzer(
        {"payout": "sload payee\ntransfer $ 3\nstop"},
        {"pp": "payout"},
    )
    closed = analyzer.closed_access("pp")
    assert not closed.global_top
    assert closed.balance_write_top
    assert closed.endpoint_top
    assert closed.covers_endpoint("anyone")


def test_dynamic_storage_key_is_per_address_top():
    analyzer = make_analyzer(
        {
            "counter": "sload n\npush 1\nadd\nsstore n\npush 7\nsload n\n"
                       "sstore $\nstop",
            "caller": "call cc 0\nstop",
        },
        {"cc": "counter", "rr": "caller"},
    )
    closed = analyzer.closed_access("rr")
    # The widened storage key scopes to the *counter* address (the VM
    # scopes dynamic keys to the executing contract's own storage).
    assert closed.storage_write_top == frozenset({"cc"})
    assert closed.covers_write("cc", "12345")
    assert not closed.covers_write("rr", "12345")


def test_value_bearing_call_records_balance_writes():
    analyzer = make_analyzer(
        {"payer": "transfer sink 5\nstop"},
        {"pp": "payer"},
    )
    closed = analyzer.closed_access("pp")
    assert closed.balance_writes == frozenset({"pp", "sink"})
    assert closed.internal_endpoints == frozenset({"pp", "sink"})


def test_address_without_code_is_empty():
    analyzer = make_analyzer({}, {})
    assert analyzer.closed_access("nobody") == ClosedAccess()
    assert not analyzer.has_code("nobody")


def test_union_is_monotone():
    a = ClosedAccess(storage_reads=frozenset({("x", "k")}))
    b = ClosedAccess(global_top=True)
    merged = a.union(b)
    assert merged.global_top
    assert ("x", "k") in merged.storage_reads


def test_call_to_codeless_address_is_plain_endpoint():
    analyzer = make_analyzer(
        {"fan": "transfer sink0 0\ntransfer sink1 0\nstop"},
        {"ff": "fan"},
    )
    closed = analyzer.closed_access("ff")
    assert closed.internal_endpoints == frozenset({"ff", "sink0", "sink1"})
    assert closed.balance_writes == frozenset()
    assert not closed.is_top_widened


def test_routed_call_closure_stays_finite_under_valueset():
    """A branch-joined call target closes over exactly the two sinks
    under the value-set lattice, but goes global-⊤ under const."""
    from repro.vm.contract import ROUTE_SINK_ASM, routed_call_asm

    bodies = {
        "routed": routed_call_asm("sink_a", "sink_b"),
        "sink": ROUTE_SINK_ASM,
    }
    bindings = {"rt": "routed", "sink_a": "sink", "sink_b": "sink"}

    registry = CodeRegistry()
    for code_id, text in bodies.items():
        registry.register_assembly(code_id, text)

    precise = ContractAnalyzer(
        registry, bindings, lattice="valueset"
    ).closed_access("rt")
    assert not precise.global_top
    assert ("sink_a", "hits") in precise.storage_writes
    assert ("sink_b", "hits") in precise.storage_writes
    assert precise.internal_endpoints == frozenset(
        {"rt", "sink_a", "sink_b"}
    )

    widened = ContractAnalyzer(
        registry, bindings, lattice="const"
    ).closed_access("rt")
    assert widened.global_top


def test_routed_transfer_closure_stays_finite_under_valueset():
    from repro.vm.contract import routed_payout_asm

    registry = CodeRegistry()
    registry.register_assembly(
        "pay", routed_payout_asm("payee_a", "payee_b")
    )
    bindings = {"pp": "pay"}

    precise = ContractAnalyzer(
        registry, bindings, lattice="valueset"
    ).closed_access("pp")
    assert not precise.balance_write_top
    assert precise.balance_writes == frozenset(
        {"pp", "payee_a", "payee_b"}
    )

    widened = ContractAnalyzer(
        registry, bindings, lattice="const"
    ).closed_access("pp")
    assert widened.balance_write_top
