"""Tests for the static read/write-set analyzer."""
