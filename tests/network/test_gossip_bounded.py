"""Bounded relay dedup memory: the LRU seen-cache and flood dedup.

The soak scenario is the one a long-running daemon hits: far more
distinct block/tx ids than the cache holds.  Memory must stay
O(capacity) with every eviction counted — never a silent leak, never
a silent drop.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.network.gossip import (
    DEFAULT_SEEN_CAPACITY,
    BoundedSeenCache,
    GossipNetwork,
)


def _ring(n: int = 6) -> GossipNetwork:
    network = GossipNetwork(seen_capacity=8)
    for i in range(n):
        network.connect(f"n{i}", f"n{(i + 1) % n}", 1.0)
    return network


class TestBoundedSeenCache:
    def test_add_reports_new_vs_duplicate(self):
        cache = BoundedSeenCache(4)
        assert cache.add("a") is True
        assert cache.add("a") is False
        assert "a" in cache
        assert len(cache) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedSeenCache(0)

    def test_eviction_is_lru_not_fifo(self):
        cache = BoundedSeenCache(3)
        for key in ("a", "b", "c"):
            cache.add(key)
        # Touch "a" so "b" becomes least-recently-seen.
        assert cache.add("a") is False
        cache.add("d")
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.evictions == 1

    def test_soak_memory_stays_bounded_and_counted(self):
        cache = BoundedSeenCache(1_000)
        for i in range(100_000):
            assert cache.add(f"blk{i}") is True
        assert len(cache) == 1_000
        assert cache.evictions == 99_000

    def test_eviction_metric_lands_in_registry(self):
        with obs.instrumented() as state:
            cache = BoundedSeenCache(2, metric="gossip.seen_evicted")
            for key in ("a", "b", "c", "d"):
                cache.add(key)
        counters = state.registry.snapshot()["counters"]
        assert counters["gossip.seen_evicted"] == 2

    def test_clear_resets_entries_not_totals(self):
        cache = BoundedSeenCache(2)
        for key in ("a", "b", "c"):
            cache.add(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.add("a") is True


class TestGossipDedup:
    def test_repeated_block_id_dropped(self):
        network = _ring()
        first = network.propagate("n0", block_id="blk-1")
        assert first is not None
        assert network.propagate("n0", block_id="blk-1") is None
        # A different origin re-flooding the same block is still a dup.
        assert network.propagate("n3", block_id="blk-1") is None

    def test_duplicate_drop_counter(self):
        with obs.instrumented() as state:
            network = _ring()
            network.propagate("n0", block_id="blk-1")
            network.propagate("n0", block_id="blk-1")
            network.propagate("n1", block_id="blk-1")
        counters = state.registry.snapshot()["counters"]
        assert counters["gossip.duplicate_drops"] == 2

    def test_without_block_id_every_call_floods(self):
        network = _ring()
        assert network.propagate("n0") is not None
        assert network.propagate("n0") is not None

    def test_evicted_id_refloods(self):
        # Capacity 8: flooding 9 distinct ids evicts the first, which
        # then floods again — the documented (and counted) trade-off.
        network = _ring()
        for i in range(9):
            assert network.propagate("n0", block_id=f"blk{i}") is not None
        assert network.seen_cache().evictions == 1
        assert network.propagate("n0", block_id="blk0") is not None

    def test_default_capacity(self):
        network = GossipNetwork()
        assert network.seen_cache().capacity == DEFAULT_SEEN_CAPACITY
