"""Tests for the gossip propagation simulator."""

from __future__ import annotations

import random

import pytest

from repro.network.gossip import (
    GossipNetwork,
    orphan_rate_estimate,
    propagation_experiment,
)


def _line_network():
    """a -- b -- c with known latencies."""
    network = GossipNetwork()
    network.connect("a", "b", 1.0)
    network.connect("b", "c", 2.0)
    return network


class TestTopology:
    def test_connect_and_degree(self):
        network = _line_network()
        assert len(network) == 3
        assert network.degree("b") == 2
        assert network.degree("a") == 1

    def test_validation(self):
        network = GossipNetwork()
        with pytest.raises(ValueError):
            network.connect("a", "a", 1.0)
        with pytest.raises(ValueError):
            network.connect("a", "b", 0.0)

    def test_random_topology_connected(self):
        network = GossipNetwork.random_topology(
            50, degree=6, rng=random.Random(1)
        )
        result = network.propagate("n0")
        assert result.reached == 50

    def test_random_topology_validation(self):
        with pytest.raises(ValueError):
            GossipNetwork.random_topology(1)
        with pytest.raises(ValueError):
            GossipNetwork.random_topology(10, degree=1)


class TestPropagation:
    def test_arrival_times_on_line(self):
        network = _line_network()
        result = network.propagate("a", validation_delay=0.0)
        assert result.arrival_times == {"a": 0.0, "b": 1.0, "c": 3.0}

    def test_validation_delay_added_per_hop(self):
        network = _line_network()
        result = network.propagate("a", validation_delay=0.5)
        # a relays immediately; b validates 0.5 before relaying to c.
        assert result.arrival_times["b"] == pytest.approx(1.0)
        assert result.arrival_times["c"] == pytest.approx(3.5)

    def test_shortest_path_wins(self):
        network = _line_network()
        network.connect("a", "c", 1.5)  # shortcut
        result = network.propagate("a")
        assert result.arrival_times["c"] == pytest.approx(1.5)

    def test_unknown_origin(self):
        with pytest.raises(KeyError):
            _line_network().propagate("zz")

    def test_coverage_time(self):
        network = _line_network()
        result = network.propagate("a")
        assert result.coverage_time(1.0) == pytest.approx(3.0)
        assert result.coverage_time(0.5) <= result.coverage_time(1.0)
        with pytest.raises(ValueError):
            result.coverage_time(0.0)

    def test_faster_validation_speeds_propagation(self):
        """The systems payoff of execution speed-ups: relay delay."""
        network = GossipNetwork.random_topology(
            60, degree=6, rng=random.Random(2)
        )
        slow = network.propagate("n0", validation_delay=0.25)
        fast = network.propagate("n0", validation_delay=0.25 / 6)  # 6x
        assert fast.coverage_time(0.9) < slow.coverage_time(0.9)


class TestExperimentAndOrphans:
    def test_experiment_outputs_ordered(self):
        stats = propagation_experiment(
            num_nodes=40, trials=3, seed=4
        )
        assert stats["t50"] <= stats["t90"] <= stats["t100"]

    def test_orphan_rate_monotone_in_delay(self):
        assert orphan_rate_estimate(0.0, 600.0) == 0.0
        slow = orphan_rate_estimate(30.0, 600.0)
        fast = orphan_rate_estimate(5.0, 600.0)
        assert 0.0 < fast < slow < 1.0

    def test_orphan_rate_validation(self):
        with pytest.raises(ValueError):
            orphan_rate_estimate(-1.0, 600.0)
        with pytest.raises(ValueError):
            orphan_rate_estimate(1.0, 0.0)

    def test_speedup_reduces_orphan_rate_end_to_end(self):
        """Execution speed-up -> faster relay -> fewer orphans."""
        network = GossipNetwork.random_topology(
            60, degree=6, rng=random.Random(5)
        )
        slow = network.propagate("n0", validation_delay=0.5)
        fast = network.propagate("n0", validation_delay=0.5 / 6)
        interval = 13.0  # Ethereum-like
        assert orphan_rate_estimate(
            fast.coverage_time(0.9), interval
        ) < orphan_rate_estimate(slow.coverage_time(0.9), interval)


class TestLifecycleRelays:
    def test_relays_and_propagated_land_on_traces(self):
        from repro import obs

        with obs.instrumented() as state:
            life = state.lifecycle
            life.begin("tx1")
            network = _line_network()
            result = network.propagate(
                "a", tx_hashes=["tx1", "unknown-tx"]
            )
            trace = life.trace("tx1")
            # One relay per hop depth (b at hop 1, c at hop 2) plus the
            # full-coverage propagated mark.
            assert trace.stages == (
                "admitted", "relayed", "relayed", "propagated",
            )
            hops = [e.attrs["hop"] for e in trace.events
                    if e.stage == "relayed"]
            assert hops == [1, 2]
            relayed = [e for e in trace.events if e.stage == "relayed"]
            assert [e.at for e in relayed] == [1.0, 3.0]
            propagated = trace.events[-1]
            assert propagated.at == max(result.arrival_times.values())
            assert propagated.attrs["reached"] == 3
            # The unknown hash is counted, never raised.
            counters = state.registry.snapshot()["counters"]
            assert counters["lifecycle.unknown"] >= 1.0

    def test_relays_offset_by_tracer_clock(self):
        from repro import obs

        with obs.instrumented() as state:
            life = state.lifecycle
            life.advance(100.0)
            life.begin("tx1")
            _line_network().propagate("a", tx_hashes=["tx1"])
            trace = life.trace("tx1")
            assert trace.events[-1].stage == "propagated"
            assert trace.events[-1].at == 103.0

    def test_no_tx_hashes_means_no_lifecycle_records(self):
        from repro import obs

        with obs.instrumented() as state:
            state.lifecycle.begin("tx1")
            _line_network().propagate("a")
            assert state.lifecycle.trace("tx1").stages == ("admitted",)
