"""Tests for geth-style trace flattening."""

from __future__ import annotations

from repro.account.receipts import ExecutedTransaction, Receipt
from repro.account.transaction import (
    InternalTransaction,
    make_account_transaction,
    make_coinbase_transaction,
)
from repro.vm.tracer import internal_rows, trace_rows_for_block


def _executed_with_internals():
    tx = make_account_transaction(
        sender="0xa", receiver="0xcontract", value=0, nonce=0,
        gas_limit=100_000,
    )
    internals = (
        InternalTransaction(sender="0xcontract", receiver="0xb", depth=2),
        InternalTransaction(sender="0xb", receiver="0xc", depth=3),
        InternalTransaction(sender="0xcontract", receiver="0xd", depth=2),
    )
    receipt = Receipt(
        tx_hash=tx.tx_hash,
        success=True,
        gas_used=50_000,
        internal_transactions=internals,
    )
    return ExecutedTransaction(tx=tx, receipt=receipt)


class TestTraceRows:
    def test_regular_tx_top_level_row(self):
        item = _executed_with_internals()
        rows = trace_rows_for_block(7, [item])
        top = rows[0]
        assert top.trace_address == ""
        assert top.trace_type == "call"
        assert top.block_number == 7
        assert top.from_address == "0xa"

    def test_internal_rows_have_dotted_paths(self):
        item = _executed_with_internals()
        rows = trace_rows_for_block(7, [item])
        internals = internal_rows(rows)
        assert len(internals) == 3
        assert all(row.trace_address != "" for row in internals)
        assert internals[0].depth == 2

    def test_coinbase_becomes_reward_row(self):
        cb = make_coinbase_transaction(miner="0xm", reward=5, height=1)
        item = ExecutedTransaction(
            tx=cb,
            receipt=Receipt(tx_hash=cb.tx_hash, success=True, gas_used=0),
        )
        rows = trace_rows_for_block(1, [item])
        assert rows[0].trace_type == "reward"
        assert internal_rows(rows) == []

    def test_failed_tx_status_zero(self):
        tx = make_account_transaction(
            sender="0xa", receiver="0xb", value=0, nonce=0
        )
        item = ExecutedTransaction(
            tx=tx,
            receipt=Receipt(tx_hash=tx.tx_hash, success=False, gas_used=21_000),
        )
        rows = trace_rows_for_block(0, [item])
        assert rows[0].status == 0

    def test_internal_count_matches_paper_definition(self):
        """internal_rows == trace-generating non-regular non-coinbase."""
        item = _executed_with_internals()
        cb = make_coinbase_transaction(miner="0xm", reward=5, height=0)
        cb_item = ExecutedTransaction(
            tx=cb,
            receipt=Receipt(tx_hash=cb.tx_hash, success=True, gas_used=0),
        )
        rows = trace_rows_for_block(0, [cb_item, item])
        assert len(internal_rows(rows)) == item.receipt.trace_count
