"""Tests for the contract VM: assembler, interpreter, gas, tracing."""

from __future__ import annotations

import pytest

from repro.account.state import WorldState
from repro.account.transaction import make_account_transaction
from repro.vm.contract import (
    AssemblyError,
    CodeRegistry,
    TOKEN_TRANSFER_ASM,
    assemble,
    busy_loop_asm,
    proxy_asm,
)
from repro.vm.opcodes import Instruction, Op, gas_cost
from repro.vm.vm import VM

ETHER = 10**18


def _environment():
    state = WorldState()
    registry = CodeRegistry()
    vm = VM(registry)
    state.credit("0xuser", 100 * ETHER)
    return state, registry, vm


def _call(state, vm, contract_address, gas_limit=500_000):
    tx = make_account_transaction(
        sender="0xuser",
        receiver=contract_address,
        value=0,
        nonce=state.nonce_of("0xuser"),
        gas_limit=gas_limit,
    )
    return state.apply_transaction(tx, executor=vm.execute_transaction)


def _deploy(state, registry, code_id, asm):
    registry.register_assembly(code_id, asm)
    address = f"0xcontract_{code_id}"
    state.account(address).code_id = code_id
    return address


class TestAssembler:
    def test_assembles_token_contract(self):
        program = assemble(TOKEN_TRANSFER_ASM)
        assert program[0].op is Op.SLOAD
        assert program[-1].op is Op.STOP

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("push 1 ; comment\n\n; whole line\nstop")
        assert len(program) == 2

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate")

    def test_call_needs_two_args(self):
        with pytest.raises(AssemblyError):
            assemble("call 0xabc")

    def test_push_string_operand(self):
        program = assemble("push hello")
        assert program[0].operand == "hello"

    def test_jump_operand_must_be_int(self):
        with pytest.raises(AssemblyError):
            assemble("jump abc")

    def test_operand_validation_in_instruction(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.PUSH)  # missing operand
        with pytest.raises(ValueError):
            Instruction(op=Op.STOP, operand=1)  # spurious operand


class TestInterpreter:
    def test_token_transfer_writes_storage(self):
        state, registry, vm = _environment()
        address = _deploy(state, registry, "token", TOKEN_TRANSFER_ASM)
        result = _call(state, vm, address)
        assert result.receipt.success
        assert state.account(address).storage["balance_receiver"] == "1"
        assert (address, "balance_sender") in result.receipt.storage_writes
        assert (address, "balance_sender") in result.receipt.storage_reads

    def test_call_generates_internal_transactions(self):
        state, registry, vm = _environment()
        db = _deploy(state, registry, "db", "push 1\nsstore hits\nstop")
        proxy = _deploy(state, registry, "proxy", proxy_asm(db))
        result = _call(state, vm, proxy)
        assert result.receipt.success
        assert result.receipt.trace_count == 1
        internal = result.receipt.internal_transactions[0]
        assert internal.sender == proxy
        assert internal.receiver == db
        assert internal.depth == 2

    def test_nested_calls_have_increasing_depth(self):
        state, registry, vm = _environment()
        leaf = _deploy(state, registry, "leaf", "stop")
        mid = _deploy(state, registry, "mid", f"call {leaf} 0\nstop")
        top = _deploy(state, registry, "top", f"call {mid} 0\nstop")
        result = _call(state, vm, top)
        depths = [i.depth for i in result.receipt.internal_transactions]
        assert depths == [2, 3]

    def test_transfer_moves_value_and_traces(self):
        state, registry, vm = _environment()
        sink = "0xsink"
        contract = _deploy(
            state, registry, "payer", f"transfer {sink} 5\nstop"
        )
        state.credit(contract, 100)
        result = _call(state, vm, contract)
        assert result.receipt.success
        assert state.balance_of(sink) == 5
        assert result.receipt.internal_transactions[0].call_type == "transfer"

    def test_revert_reports_failure(self):
        state, registry, vm = _environment()
        contract = _deploy(state, registry, "rev", "revert")
        result = _call(state, vm, contract)
        assert not result.receipt.success

    def test_failed_call_refunds_value_but_keeps_fee(self):
        state, registry, vm = _environment()
        contract = _deploy(state, registry, "rev2", "revert")
        before = state.balance_of("0xuser")
        tx = make_account_transaction(
            sender="0xuser",
            receiver=contract,
            value=ETHER,
            nonce=state.nonce_of("0xuser"),
            gas_limit=100_000,
        )
        result = state.apply_transaction(tx, executor=vm.execute_transaction)
        assert not result.receipt.success
        assert state.balance_of(contract) == 0
        fee = result.gas_used * tx.gas_price
        assert state.balance_of("0xuser") == before - fee

    def test_out_of_gas_fails_and_consumes_budget(self):
        state, registry, vm = _environment()
        contract = _deploy(state, registry, "loop", busy_loop_asm(10_000))
        result = _call(state, vm, contract, gas_limit=25_000)
        assert not result.receipt.success
        assert result.gas_used == 25_000  # everything burned

    def test_busy_loop_completes_with_enough_gas(self):
        state, registry, vm = _environment()
        contract = _deploy(state, registry, "loop2", busy_loop_asm(5))
        result = _call(state, vm, contract)
        assert result.receipt.success

    def test_arithmetic_and_branches(self):
        state, registry, vm = _environment()
        # Compute (3 + 4) * 2 and store it.
        asm = """
            push 3
            push 4
            add
            push 2
            mul
            sstore result
            stop
        """
        contract = _deploy(state, registry, "math", asm)
        result = _call(state, vm, contract)
        assert result.receipt.success
        assert state.account(contract).storage["result"] == "14"

    def test_division_by_zero_yields_zero(self):
        state, registry, vm = _environment()
        asm = "push 5\npush 0\ndiv\nsstore q\nstop"
        contract = _deploy(state, registry, "divz", asm)
        _call(state, vm, contract)
        assert state.account(contract).storage["q"] == "0"

    def test_sstore_update_cheaper_than_set(self):
        state, registry, vm = _environment()
        contract = _deploy(state, registry, "st", "push 1\nsstore k\nstop")
        first = _call(state, vm, contract)
        second = _call(state, vm, contract)
        assert second.gas_used < first.gas_used

    def test_balance_opcode_reads_state(self):
        state, registry, vm = _environment()
        state.credit("0xrich", 1234)
        asm = "balance 0xrich\nsstore snapshot\nstop"
        contract = _deploy(state, registry, "bal", asm)
        result = _call(state, vm, contract)
        assert state.account(contract).storage["snapshot"] == "1234"
        assert ("0xrich", "__balance__") in result.receipt.storage_reads

    def test_call_depth_limit(self):
        state, registry, vm = _environment()
        # Self-calling contract recurses past MAX_CALL_DEPTH.
        address = "0xcontract_recurse"
        registry.register_assembly(
            "recurse", f"call {address} 0\nstop"
        )
        state.account(address).code_id = "recurse"
        from repro.chain.errors import VMError

        with pytest.raises(VMError):
            _call(state, vm, address, gas_limit=10_000_000)

    def test_gas_cost_table_covers_all_ops(self):
        from repro.account.gas import DEFAULT_GAS_SCHEDULE

        for op in Op:
            operand: object = None
            if op in (Op.CALL, Op.TRANSFER):
                operand = ("0xa", 0)
            elif op in (Op.JUMP, Op.JUMPI):
                operand = 0
            elif op in (Op.PUSH, Op.SLOAD, Op.SSTORE, Op.BALANCE):
                operand = "k"
            instruction = Instruction(op=op, operand=operand)
            assert gas_cost(instruction, DEFAULT_GAS_SCHEDULE) >= 0


class TestCodeRegistry:
    def test_rebinding_same_body_is_idempotent(self):
        registry = CodeRegistry()
        registry.register_assembly("a", "stop")
        registry.register_assembly("a", "stop")
        assert len(registry) == 1

    def test_rebinding_different_body_rejected(self):
        registry = CodeRegistry()
        registry.register_assembly("a", "stop")
        with pytest.raises(ValueError):
            registry.register_assembly("a", "revert")

    def test_contains_and_get(self):
        registry = CodeRegistry()
        registry.register_assembly("a", "stop")
        assert "a" in registry
        assert registry.get("missing") is None
