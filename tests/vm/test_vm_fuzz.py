"""Property-based fuzzing of the VM interpreter.

The interpreter must be *total* over arbitrary programs: any syntactic
program either runs to completion or fails with a typed error
(VMError / OutOfGasError surfaced as a failed receipt) — it must never
raise an unexpected exception, loop forever, or corrupt balances.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.account.state import WorldState
from repro.account.transaction import make_account_transaction
from repro.chain.errors import ChainError
from repro.vm.contract import CodeRegistry
from repro.vm.opcodes import Instruction, Op
from repro.vm.vm import VM

ETHER = 10**18

_operandless = [
    Op.POP, Op.DUP, Op.SWAP, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.LT,
    Op.EQ, Op.ISZERO, Op.LOG, Op.STOP, Op.REVERT,
]


def _instruction_strategy():
    operandless = st.sampled_from(_operandless).map(
        lambda op: Instruction(op=op)
    )
    push = st.integers(min_value=-100, max_value=100).map(
        lambda n: Instruction(op=Op.PUSH, operand=n)
    )
    jump = st.tuples(
        st.sampled_from([Op.JUMP, Op.JUMPI]),
        st.integers(min_value=0, max_value=30),
    ).map(lambda pair: Instruction(op=pair[0], operand=pair[1]))
    storage = st.tuples(
        st.sampled_from([Op.SLOAD, Op.SSTORE, Op.BALANCE]),
        st.sampled_from(["k0", "k1", "k2"]),
    ).map(lambda pair: Instruction(op=pair[0], operand=pair[1]))
    call = st.tuples(
        st.sampled_from([Op.CALL, Op.TRANSFER]),
        st.sampled_from(["0xplain", "0xother"]),
        st.integers(min_value=0, max_value=5),
    ).map(
        lambda triple: Instruction(
            op=triple[0], operand=(triple[1], triple[2])
        )
    )
    return st.one_of(operandless, push, jump, storage, call)


programs = st.lists(_instruction_strategy(), min_size=1, max_size=30)


@settings(max_examples=300, deadline=None)
@given(program=programs)
def test_interpreter_is_total(program):
    """Any program terminates with a receipt or a typed ChainError."""
    state = WorldState()
    registry = CodeRegistry()
    registry.register("fuzz", tuple(program))
    contract = "0xfuzz"
    state.account(contract).code_id = "fuzz"
    state.credit("0xuser", 10 * ETHER)
    state.credit(contract, 1000)
    vm = VM(registry)
    tx = make_account_transaction(
        sender="0xuser",
        receiver=contract,
        value=0,
        nonce=0,
        gas_limit=200_000,
    )
    try:
        result = state.apply_transaction(tx, executor=vm.execute_transaction)
    except ChainError:
        return  # typed failure is acceptable
    # Gas can never exceed the limit, and balances never go negative.
    assert result.gas_used <= tx.gas_limit
    assert state.balance_of("0xuser") >= 0
    assert state.balance_of(contract) >= 0


@settings(max_examples=150, deadline=None)
@given(program=programs)
def test_interpreter_never_mints(program):
    """Total supply never increases through contract execution."""
    state = WorldState()
    registry = CodeRegistry()
    registry.register("fuzz", tuple(program))
    contract = "0xfuzz"
    state.account(contract).code_id = "fuzz"
    state.credit("0xuser", 10 * ETHER)
    state.credit(contract, 1000)
    supply_before = state.total_supply()
    vm = VM(registry)
    tx = make_account_transaction(
        sender="0xuser",
        receiver=contract,
        value=0,
        nonce=0,
        gas_limit=100_000,
    )
    try:
        state.apply_transaction(tx, executor=vm.execute_transaction)
    except ChainError:
        return
    # Fees are burned, transfers conserve: supply can only shrink.
    assert state.total_supply() <= supply_before


@settings(max_examples=100, deadline=None)
@given(
    program=programs,
    gas_limit=st.integers(min_value=21_000, max_value=60_000),
)
def test_tight_gas_limits_are_safe(program, gas_limit):
    """Low gas budgets produce failed receipts, never stuck state."""
    state = WorldState()
    registry = CodeRegistry()
    registry.register("fuzz", tuple(program))
    contract = "0xfuzz"
    state.account(contract).code_id = "fuzz"
    state.credit("0xuser", 10 * ETHER)
    vm = VM(registry)
    tx = make_account_transaction(
        sender="0xuser",
        receiver=contract,
        value=0,
        nonce=0,
        gas_limit=gas_limit,
    )
    try:
        result = state.apply_transaction(tx, executor=vm.execute_transaction)
    except ChainError:
        return
    assert result.gas_used <= gas_limit
    assert state.nonce_of("0xuser") == 1  # nonce advanced exactly once
