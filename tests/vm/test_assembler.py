"""Assemble-time validation: jump ranges, PUSH tokens, `$` operands."""

from __future__ import annotations

import pytest

from repro.account.state import WorldState
from repro.account.transaction import make_account_transaction
from repro.vm.contract import (
    AssemblyError,
    CONST_INDEXED_ASM,
    CodeRegistry,
    DYNAMIC_COUNTER_ASM,
    DYNAMIC_PAYOUT_ASM,
    TOGGLE_BRANCH_ASM,
    TOKEN_TRANSFER_ASM,
    assemble,
)
from repro.vm.opcodes import STACK_OPERAND, Op
from repro.vm.vm import VM

ETHER = 10**18


def test_out_of_range_jump_is_an_assembly_error():
    with pytest.raises(AssemblyError, match=r"line 2: jump target 99"):
        assemble("push 1\njump 99\nstop")


def test_negative_jump_target_is_an_assembly_error():
    with pytest.raises(AssemblyError, match="out of range"):
        assemble("jump -1\nstop")


def test_in_range_jump_assembles():
    program = assemble("jump 1\nstop")
    assert program[0].operand == 1


def test_bad_push_token_is_an_assembly_error():
    with pytest.raises(AssemblyError, match=r"push operand '5x5'"):
        assemble("push 5x5\nstop")


def test_push_accepts_symbols_and_hex():
    program = assemble("push balance_key\npush 0xabc\nstop")
    assert program[0].operand == "balance_key"
    assert program[1].operand == 0xABC  # hex literals parse as ints


def test_dynamic_operand_round_trips():
    program = assemble(
        "sload $\nsstore $\nbalance $\ncall $ 0\ntransfer $ 2\nstop"
    )
    assert program[0].operand == STACK_OPERAND
    assert program[1].operand == STACK_OPERAND
    assert program[2].operand == STACK_OPERAND
    assert program[3].operand == (STACK_OPERAND, 0)
    assert program[4].operand == (STACK_OPERAND, 2)


def test_stock_assemblies_still_assemble():
    for text in (
        TOKEN_TRANSFER_ASM,
        TOGGLE_BRANCH_ASM,
        DYNAMIC_COUNTER_ASM,
        DYNAMIC_PAYOUT_ASM,
        CONST_INDEXED_ASM,
    ):
        assert len(assemble(text)) > 0


def run_contract(asm: str, storage: dict[str, str] | None = None):
    registry = CodeRegistry()
    registry.register_assembly("c", asm)
    state = WorldState()
    contract = "0xc"
    state.account(contract).code_id = "c"
    state.account(contract).storage.update(storage or {})
    state.credit(contract, 1000)
    state.credit("0xuser", ETHER)
    tx = make_account_transaction(
        sender="0xuser", receiver=contract, value=0, nonce=0,
        gas_limit=100_000,
    )
    result = state.apply_transaction(
        tx, executor=VM(registry).execute_transaction
    )
    return state, result.receipt, contract


def test_vm_sstore_dynamic_pops_key_then_value():
    # Stack [7, 5]: sstore $ pops key=5, then value=7.
    state, receipt, contract = run_contract("push 7\npush 5\nsstore $\nstop")
    assert receipt.success
    assert state.account(contract).storage["5"] == "7"
    assert (contract, "5") in receipt.storage_writes


def test_vm_transfer_dynamic_pops_target():
    state, receipt, contract = run_contract(
        "push 0xdead\ntransfer $ 3\nstop"
    )
    assert receipt.success
    (itx,) = receipt.internal_transactions
    assert itx.receiver == str(0xDEAD)  # pushed ints resolve via str()
    assert itx.value == 3
    assert state.balance_of(str(0xDEAD)) == 3


def test_vm_sload_dynamic_pops_key():
    state, receipt, contract = run_contract(
        "push 9\nsload $\nsstore out\nstop", storage={"9": "42"}
    )
    assert receipt.success
    assert (contract, "9") in receipt.storage_reads
    assert state.account(contract).storage["out"] == "42"
