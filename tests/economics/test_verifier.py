"""Tests for the Verifier's Dilemma model (§II-C)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics.verifier import (
    VerifierParams,
    expected_reward_skipper,
    expected_reward_verifier,
    invalid_block_survival,
    security_gain_from_speedup,
    verification_equilibrium,
)


def _params(execution=2.0, interval=600.0, invalid=0.01, penalty=0.0):
    return VerifierParams(
        execution_time=execution,
        block_interval=interval,
        invalid_rate=invalid,
        penalty=penalty,
    )


class TestParams:
    def test_cost_share(self):
        assert _params(execution=60, interval=600).verification_cost_share \
            == pytest.approx(0.1)

    def test_cost_share_capped_at_one(self):
        assert _params(execution=1200, interval=600).verification_cost_share \
            == 1.0

    def test_with_speedup_divides_execution_time(self):
        faster = _params(execution=60).with_speedup(6.0)
        assert faster.execution_time == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            _params(execution=-1)
        with pytest.raises(ValueError):
            _params(interval=0)
        with pytest.raises(ValueError):
            _params(invalid=1.5)
        with pytest.raises(ValueError):
            _params().with_speedup(0)


class TestRewards:
    def test_verifier_pays_the_cost(self):
        params = _params(execution=60, interval=600)
        assert expected_reward_verifier(params) == pytest.approx(0.9)

    def test_skipper_rides_free_when_everyone_verifies(self):
        params = _params(execution=60, interval=600)
        assert expected_reward_skipper(params, 1.0) == pytest.approx(1.0)

    def test_skipper_exposed_when_nobody_verifies(self):
        params = _params(invalid=0.2)
        assert expected_reward_skipper(params, 0.0) == pytest.approx(0.8)

    def test_penalty_hurts_skippers(self):
        cheap = expected_reward_skipper(_params(invalid=0.2), 0.0)
        harsh = expected_reward_skipper(
            _params(invalid=0.2, penalty=1.0), 0.0
        )
        assert harsh < cheap


class TestEquilibrium:
    def test_free_verification_means_everyone_verifies(self):
        params = _params(execution=0.0)
        assert verification_equilibrium(params) == 1.0

    def test_expensive_verification_collapses(self):
        """The dilemma: verification costlier than the exposure -> v=0."""
        params = _params(execution=300, interval=600, invalid=0.01)
        assert verification_equilibrium(params) == 0.0

    def test_interior_equilibrium(self):
        params = _params(execution=6, interval=600, invalid=0.02)
        v = verification_equilibrium(params)
        assert 0.0 < v < 1.0
        # At equilibrium, verifying and skipping pay the same.
        assert expected_reward_verifier(params) == pytest.approx(
            expected_reward_skipper(params, v)
        )

    def test_cheaper_execution_raises_equilibrium(self):
        expensive = verification_equilibrium(
            _params(execution=10, interval=600, invalid=0.02)
        )
        cheap = verification_equilibrium(
            _params(execution=2, interval=600, invalid=0.02)
        )
        assert cheap > expensive


class TestSecurityGain:
    def test_speedup_raises_verifying_fraction(self):
        """§II-C's argument end to end: 6x faster execution -> more
        verifiers -> fewer surviving invalid blocks."""
        params = _params(execution=8, interval=600, invalid=0.02)
        gain = security_gain_from_speedup(params, speedup=6.0)
        assert gain.improved_fraction > gain.baseline_fraction
        assert gain.absolute_gain > 0
        before = invalid_block_survival(params, gain.baseline_fraction)
        after = invalid_block_survival(params, gain.improved_fraction)
        assert after < before

    def test_speedup_of_one_changes_nothing(self):
        params = _params(execution=8, interval=600, invalid=0.02)
        gain = security_gain_from_speedup(params, speedup=1.0)
        assert gain.absolute_gain == pytest.approx(0.0)


@settings(max_examples=200)
@given(
    execution=st.floats(min_value=0.0, max_value=600.0),
    invalid=st.floats(min_value=0.001, max_value=0.5),
    speedup=st.floats(min_value=1.0, max_value=64.0),
)
def test_speedups_never_reduce_security(execution, invalid, speedup):
    """Property: the §II-C argument is monotone in R."""
    params = VerifierParams(
        execution_time=execution,
        block_interval=600.0,
        invalid_rate=invalid,
    )
    gain = security_gain_from_speedup(params, speedup)
    assert gain.improved_fraction >= gain.baseline_fraction - 1e-12
    assert 0.0 <= gain.baseline_fraction <= 1.0
    assert 0.0 <= gain.improved_fraction <= 1.0
