"""Shared fixtures: small pre-built chains reused across test modules.

The generated chains are deterministic (fixed seeds), so session scope
is safe and keeps the suite fast: the expensive workload builders run
once per session, not once per test.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

# The CI spawn shard exports REPRO_MP_START_METHOD=spawn so the
# process-backend tests exercise the shared-memory transport instead of
# fork globals (repro.execution.parallel_replay honours the configured
# start method).  Force it before any pool exists; tests assert the
# method actually took via test_differential.test_start_method_honoured.
_START_METHOD = os.environ.get("REPRO_MP_START_METHOD")
if _START_METHOD:
    multiprocessing.set_start_method(_START_METHOD, force=True)

from repro.workload import generate_chain
from repro.workload.account_workload import build_account_chain
from repro.workload.profiles import BITCOIN, ETHEREUM, ZILLIQA
from repro.workload.utxo_workload import UTXOWorkloadBuilder


@pytest.fixture(scope="session")
def small_bitcoin_builder():
    """A 40-block Bitcoin chain at 20% volume, with builder state."""
    builder = UTXOWorkloadBuilder(profile=BITCOIN, seed=7, scale=0.2)
    builder.build_chain(40)
    return builder


@pytest.fixture(scope="session")
def small_bitcoin_ledger(small_bitcoin_builder):
    return small_bitcoin_builder.ledger


@pytest.fixture(scope="session")
def small_ethereum_builder():
    """A 40-block Ethereum chain at 40% volume."""
    return build_account_chain(ETHEREUM, num_blocks=40, seed=7, scale=0.4)


@pytest.fixture(scope="session")
def small_zilliqa_builder():
    """A 30-block Zilliqa (sharded) chain."""
    return build_account_chain(ZILLIQA, num_blocks=30, seed=7, scale=1.0)


@pytest.fixture(scope="session")
def ethereum_history():
    """Analyzed Ethereum history (80 blocks, reduced volume)."""
    return generate_chain("ethereum", num_blocks=80, seed=3, scale=0.5).history


@pytest.fixture(scope="session")
def bitcoin_history():
    """Analyzed Bitcoin history (60 blocks, reduced volume)."""
    return generate_chain("bitcoin", num_blocks=60, seed=3, scale=0.1).history
