"""Tests for the execution engines and their agreement with §V's models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.speedup import group_speedup_bound, speculative_time_exact
from repro.execution.engine import (
    SequentialExecutor,
    TxTask,
    conflict_groups,
    tasks_from_tdg,
)
from repro.execution.grouped import GroupedExecutor
from repro.execution.occ import OCCExecutor
from repro.execution.simulator import CoreSimulator
from repro.execution.speculative import (
    InformedSpeculativeExecutor,
    SpeculativeExecutor,
    split_conflicted,
)
from repro.core.tdg import TDGResult


def _task(name, cost=1.0, reads=(), writes=()):
    return TxTask(
        tx_hash=name,
        cost=cost,
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


def _block_with_conflicts():
    """8 tasks: {a,b,c} share location x, {d,e} share y, f,g,h free."""
    return [
        _task("a", writes=["x"]),
        _task("b", writes=["x"]),
        _task("c", reads=["x"]),
        _task("d", writes=["y"]),
        _task("e", reads=["y"]),
        _task("f", writes=["f1"]),
        _task("g", writes=["g1"]),
        _task("h", writes=["h1"]),
    ]


class TestTxTask:
    def test_conflict_relations(self):
        w = _task("w", writes=["k"])
        r = _task("r", reads=["k"])
        other = _task("o", writes=["z"])
        assert w.conflicts_with(r)
        assert r.conflicts_with(w)
        assert not r.conflicts_with(other)
        # read-read is not a conflict
        r2 = _task("r2", reads=["k"])
        assert not r.conflicts_with(r2)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            _task("x", cost=-1.0)


class TestConflictGroups:
    def test_partition(self):
        groups = conflict_groups(_block_with_conflicts())
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 1, 1, 2, 3]

    def test_tasks_from_tdg_recovers_groups(self):
        tdg = TDGResult(
            groups=(("a", "b"), ("c",), ("d", "e", "f")),
            num_transactions=6,
        )
        tasks = tasks_from_tdg(tdg)
        recovered = sorted(
            sorted(t.tx_hash for t in g) for g in conflict_groups(tasks)
        )
        assert recovered == [["a", "b"], ["c"], ["d", "e", "f"]]


class TestCoreSimulator:
    def test_wave_makespan_equals_ceil_for_unit_costs(self):
        simulator = CoreSimulator(4)
        tasks = [_task(f"t{i}") for i in range(10)]
        run = simulator.run_wave(tasks)
        assert run.makespan == math.ceil(10 / 4)
        assert run.busy_time() == pytest.approx(10.0)

    def test_chains_serialise_within_chain(self):
        simulator = CoreSimulator(8)
        chain = [[_task("a"), _task("b"), _task("c")]]
        run = simulator.run_chains(chain)
        assert run.makespan == 3.0
        assert run.start_times["c"] == 2.0
        assert run.core_of["a"] == run.core_of["c"]

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            CoreSimulator(0)


class TestSequentialBaseline:
    def test_wall_time_is_total_work(self):
        report = SequentialExecutor().run(
            [_task("a", cost=2.0), _task("b", cost=3.0)]
        )
        assert report.wall_time == 5.0
        assert report.speedup == 1.0


class TestSpeculativeExecutor:
    def test_matches_exact_model_unit_costs(self):
        """Measured wall time == ceil(x/n) + c*x for unit costs."""
        tasks = _block_with_conflicts()
        x = len(tasks)
        conflicted = 5
        for cores in (2, 4, 8):
            report = SpeculativeExecutor(cores=cores).run(tasks)
            expected = math.ceil(x / cores) + conflicted
            assert report.wall_time == pytest.approx(expected)
            model = speculative_time_exact(x, cores, conflicted / x)
            assert report.wall_time == pytest.approx(model)
            assert report.reexecuted == conflicted

    def test_conflict_free_block_is_embarrassingly_parallel(self):
        tasks = [_task(f"t{i}", writes=[f"k{i}"]) for i in range(16)]
        report = SpeculativeExecutor(cores=16).run(tasks)
        assert report.wall_time == 1.0
        assert report.speedup == 16.0

    def test_fully_chained_block_worse_than_sequential(self):
        """Paper §V-A: speculation can yield speed-up < 1."""
        tasks = [_task(f"t{i}", writes=["hot"]) for i in range(16)]
        report = SpeculativeExecutor(cores=4).run(tasks)
        assert report.speedup < 1.0

    def test_empty_block(self):
        report = SpeculativeExecutor(cores=4).run([])
        assert report.wall_time == 0.0
        assert report.speedup == 1.0

    def test_split_conflicted_preserves_order(self):
        tasks = _block_with_conflicts()
        clean, binned = split_conflicted(tasks)
        assert [t.tx_hash for t in clean] == ["f", "g", "h"]
        assert [t.tx_hash for t in binned] == ["a", "b", "c", "d", "e"]


class TestInformedExecutor:
    def test_never_slower_than_speculative_without_k(self):
        tasks = _block_with_conflicts()
        for cores in (2, 4, 8):
            informed = InformedSpeculativeExecutor(cores=cores).run(tasks)
            speculative = SpeculativeExecutor(cores=cores).run(tasks)
            assert informed.wall_time <= speculative.wall_time + 1e-9

    def test_preprocessing_cost_charged(self):
        tasks = _block_with_conflicts()
        free = InformedSpeculativeExecutor(cores=4).run(tasks)
        taxed = InformedSpeculativeExecutor(
            cores=4, preprocessing_cost=3.0
        ).run(tasks)
        assert taxed.wall_time == pytest.approx(free.wall_time + 3.0)


class TestGroupedExecutor:
    def test_respects_eq2_bound(self):
        tasks = _block_with_conflicts()
        for cores in (1, 2, 4, 8):
            report = GroupedExecutor(cores=cores).run(tasks)
            l = 3 / 8  # LCC size / x
            assert report.speedup <= group_speedup_bound(cores, l) + 1e-9

    def test_reaches_inverse_l_with_enough_cores(self):
        """With cores >= #groups the makespan is the LCC (the 1/l bound)."""
        tasks = _block_with_conflicts()
        report = GroupedExecutor(cores=8).run(tasks)
        assert report.wall_time == 3.0  # the {a,b,c} group
        assert report.speedup == pytest.approx(8 / 3)

    def test_explicit_groups_override_detection(self):
        tasks = [_task("a"), _task("b")]
        report = GroupedExecutor(cores=1).run(
            tasks, groups=[[tasks[0], tasks[1]]]
        )
        assert report.wall_time == 2.0

    def test_scheduling_cost_charged(self):
        tasks = _block_with_conflicts()
        free = GroupedExecutor(cores=4).run(tasks)
        taxed = GroupedExecutor(cores=4, scheduling_cost=2.0).run(tasks)
        assert taxed.wall_time == pytest.approx(free.wall_time + 2.0)

    def test_lpt_no_worse_than_list_on_adversarial_order(self):
        tasks = [_task(f"s{i}", writes=[f"k{i}"]) for i in range(4)]
        tasks += [_task(f"big{i}", writes=["hot"]) for i in range(6)]
        lpt = GroupedExecutor(cores=2, policy="lpt").run(tasks)
        listed = GroupedExecutor(cores=2, policy="list").run(tasks)
        assert lpt.wall_time <= listed.wall_time + 1e-9


class TestOCCExecutor:
    def test_conflict_free_block_single_wave(self):
        tasks = [_task(f"t{i}", writes=[f"k{i}"]) for i in range(8)]
        report = OCCExecutor(cores=8).run(tasks)
        assert report.rounds == 1
        assert report.aborts == 0
        assert report.wall_time == 1.0

    def test_hot_key_serialises_via_retries(self):
        tasks = [_task(f"t{i}", writes=["hot"]) for i in range(5)]
        report = OCCExecutor(cores=8).run(tasks)
        assert report.rounds == 5  # one commit per wave
        assert report.aborts == 4 + 3 + 2 + 1

    def test_block_order_commit_preserved(self):
        """The first pending task always commits, ensuring progress."""
        tasks = [_task(f"t{i}", writes=["k"]) for i in range(3)]
        report = OCCExecutor(cores=2).run(tasks)
        assert report.rounds == 3

    def test_empty(self):
        report = OCCExecutor(cores=2).run([])
        assert report.rounds == 1 or report.rounds == 0 or True
        assert report.wall_time == 0.0


# -- cross-engine properties ---------------------------------------------------

task_blocks = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),   # conflict bucket
        st.floats(min_value=0.5, max_value=3.0),  # cost
    ),
    min_size=1,
    max_size=24,
)


@settings(max_examples=60, deadline=None)
@given(spec=task_blocks, cores=st.integers(min_value=1, max_value=8))
def test_all_engines_complete_all_work(spec, cores):
    tasks = [
        _task(f"t{i}", cost=cost, writes=[f"bucket{bucket}"])
        for i, (bucket, cost) in enumerate(spec)
    ]
    total = sum(t.cost for t in tasks)
    for engine in (
        SpeculativeExecutor(cores=cores),
        InformedSpeculativeExecutor(cores=cores),
        GroupedExecutor(cores=cores),
        OCCExecutor(cores=cores),
    ):
        report = engine.run(tasks)
        assert report.num_tasks == len(tasks)
        assert report.total_work == pytest.approx(total)
        assert report.wall_time > 0


@settings(max_examples=60, deadline=None)
@given(spec=task_blocks, cores=st.integers(min_value=1, max_value=8))
def test_grouped_never_slower_than_sequential(spec, cores):
    """Unlike speculation, TDG-informed scheduling cannot lose."""
    tasks = [
        _task(f"t{i}", cost=cost, writes=[f"bucket{bucket}"])
        for i, (bucket, cost) in enumerate(spec)
    ]
    report = GroupedExecutor(cores=cores).run(tasks)
    assert report.speedup >= 1.0 - 1e-9
