"""Unit tests for the replay fan-out building blocks.

The differential suite (test_differential.py) proves whole-run
equivalence; this module pins the pieces — digest semantics, input
validation, the per-thread observability scope, recorder row dumps and
the worker-to-parent metrics merge.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro import obs
from repro.execution.parallel_replay import (
    ENGINES,
    ReplayBlock,
    coerce_replay_inputs,
    receipt_digest,
    replay_block_inputs,
    replay_chain,
    replay_profile,
    state_root,
    validate_engines,
)
from repro.obs import ObservabilityState
from repro.obs.lifecycle import NOOP_LIFECYCLE
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import FlightRecorder, NoopFlightRecorder
from repro.obs.tracer import NOOP_TRACER
from repro.workload.profiles import BITCOIN


@pytest.fixture(scope="module")
def tiny_inputs():
    return replay_block_inputs(BITCOIN, blocks=3, seed=9, scale=0.1)


class TestEngineRegistry:
    def test_engines_match_executor_choices(self):
        """The replay registry cannot drift from the regress registry."""
        from repro.obs.regress import EXECUTOR_CHOICES

        assert ENGINES == EXECUTOR_CHOICES

    def test_validate_preserves_order(self):
        assert validate_engines(["dag", "occ"]) == ("dag", "occ")

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_engines([])

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            validate_engines(["occ", "blockstm"])

    def test_validate_rejects_duplicates(self):
        with pytest.raises(ValueError, match="repeat"):
            validate_engines(["occ", "occ"])


class TestValidation:
    def test_unknown_data_model(self, tiny_inputs):
        with pytest.raises(ValueError, match="data model"):
            replay_chain(tiny_inputs, data_model="eutxo")

    def test_bad_cores(self, tiny_inputs):
        with pytest.raises(ValueError, match="cores"):
            replay_chain(tiny_inputs, data_model="utxo", cores=0)

    def test_bad_backend(self, tiny_inputs):
        with pytest.raises(ValueError, match="backend"):
            replay_chain(tiny_inputs, data_model="utxo", backend="mpi")

    def test_bad_jobs(self, tiny_inputs):
        with pytest.raises(ValueError, match="jobs"):
            replay_chain(
                tiny_inputs, data_model="utxo", backend="thread", jobs=0
            )

    def test_bad_chunk_size(self, tiny_inputs):
        with pytest.raises(ValueError, match="chunk"):
            replay_chain(tiny_inputs, data_model="utxo", chunk_size=0)

    def test_unknown_profile_name(self):
        with pytest.raises(ValueError, match="unknown chain"):
            replay_profile("namecoin", blocks=2, seed=0)

    def test_bad_block_count(self):
        with pytest.raises(ValueError, match="blocks"):
            replay_profile("bitcoin", blocks=0, seed=0)

    def test_coerce_accepts_triples(self, tiny_inputs):
        """Bare triples coerce to blocks with no predictions attached."""
        triples = [(b.height, b.tasks, b.payload) for b in tiny_inputs]
        stripped = [
            ReplayBlock(height=b.height, tasks=b.tasks, payload=b.payload)
            for b in tiny_inputs
        ]
        assert coerce_replay_inputs(triples) == stripped
        assert all(b.predictions == () for b in coerce_replay_inputs(triples))

    def test_inputs_carry_predictions(self, tiny_inputs):
        """UTXO predictions are exact: writes mirror the task writes."""
        carried = [b for b in tiny_inputs if b.tasks]
        assert carried
        for block in carried:
            assert len(block.predictions) == len(block.tasks)
            by_hash = {p.tx_hash: p for p in block.predictions}
            for task in block.tasks:
                prediction = by_hash[task.tx_hash]
                assert prediction.writes == task.writes
                assert not prediction.global_top


class TestDigests:
    def test_state_root_tracks_per_location_order(self):
        writes = {"a": ("x",), "b": ("x",), "c": ("y",)}
        base = state_root(("a", "b", "c"), writes)
        # Swapping two writers of the SAME location changes the root.
        assert state_root(("b", "a", "c"), writes) != base
        # Moving a writer of a DIFFERENT location does not.
        assert state_root(("a", "c", "b"), writes) == base
        assert state_root(("c", "a", "b"), writes) == base

    def test_state_root_ignores_readonly_tasks(self):
        writes = {"a": ("x",), "r": ()}
        assert state_root(("a", "r"), writes) == state_root(("a",), writes)

    def test_receipt_digest_rejects_foreign_payloads(self):
        with pytest.raises(TypeError):
            receipt_digest({"gas": 21000})

    def test_utxo_receipt_digest_is_stable(self, tiny_inputs):
        payload = tiny_inputs[0].payload
        assert [receipt_digest(item) for item in payload] == [
            receipt_digest(item) for item in payload
        ]

    def test_inputs_are_picklable(self, tiny_inputs):
        clone = pickle.loads(pickle.dumps(tiny_inputs))
        assert clone == tiny_inputs
        assert isinstance(clone[0], ReplayBlock)


class TestScopedObservability:
    def test_scoped_binds_and_restores(self):
        recorder = FlightRecorder()
        state = ObservabilityState(
            registry=MetricsRegistry(), tracer=NOOP_TRACER,
            recorder=recorder, lifecycle=NOOP_LIFECYCLE,
        )
        assert not obs.enabled()
        with obs.scoped(state):
            assert obs.get_recorder() is recorder
            obs.counter("scoped.test").inc()
        assert not obs.enabled()
        assert state.registry.counter("scoped.test").value == 1

    def test_scoped_nests(self):
        outer = ObservabilityState(
            registry=MetricsRegistry(), tracer=NOOP_TRACER,
            recorder=NoopFlightRecorder(), lifecycle=NOOP_LIFECYCLE,
        )
        inner = ObservabilityState(
            registry=MetricsRegistry(), tracer=NOOP_TRACER,
            recorder=NoopFlightRecorder(), lifecycle=NOOP_LIFECYCLE,
        )
        with obs.scoped(outer):
            with obs.scoped(inner):
                obs.counter("depth").inc()
            obs.counter("depth").inc(10)
        assert inner.registry.counter("depth").value == 1
        assert outer.registry.counter("depth").value == 10

    def test_scoped_is_thread_local(self):
        """Two threads' scopes never see each other's registry."""
        results: dict[str, float] = {}

        def worker(name: str, barrier: threading.Barrier) -> None:
            registry = MetricsRegistry()
            state = ObservabilityState(
                registry=registry, tracer=NOOP_TRACER,
                recorder=NoopFlightRecorder(), lifecycle=NOOP_LIFECYCLE,
            )
            with obs.scoped(state):
                barrier.wait()  # both threads inside their scopes
                obs.counter("thread.local", tid=name).inc()
                barrier.wait()
            results[name] = registry.counter(
                "thread.local", tid=name
            ).value
            results[f"{name}.metrics"] = len(registry)

        barrier = threading.Barrier(2)
        threads = [
            threading.Thread(target=worker, args=(name, barrier))
            for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["a"] == 1 and results["b"] == 1
        # One metric each: no cross-thread bleed-through.
        assert results["a.metrics"] == 1 and results["b.metrics"] == 1


class TestRecorderDump:
    def test_dump_rows_round_trips_through_extend(self):
        recorder = FlightRecorder()
        with recorder.block(7):
            recorder.record("schedule", "tx1", executor="occ")
            recorder.record("commit", "tx1", executor="occ", lane=0,
                            clock=1.0, cost=1.0)
        rows = recorder.dump_rows()
        assert pickle.loads(pickle.dumps(rows)) == rows
        replica = FlightRecorder()
        replica.extend(rows)
        assert replica.dump_rows() == rows
        assert [e.kind for e in replica.events(block=7)] == [
            "schedule", "commit",
        ]

    def test_noop_recorder_dump_is_empty(self):
        assert NoopFlightRecorder().dump_rows() == []


class TestParentObservability:
    def test_worker_obs_merges_into_instrumented_parent(self, tiny_inputs):
        """Fanned-out replay feeds the parent registry and recorder.

        The per-engine event stream must be identical to a serial
        replay's, and the worker-side ``exec.*`` counters (recorded in
        the chunk's private registry) must fold into the parent.
        """
        with obs.instrumented() as serial_state:
            replay_chain(
                tiny_inputs, data_model="utxo", engines=("occ",),
                backend="serial",
            )
        with obs.instrumented() as fanned_state:
            replay_chain(
                tiny_inputs, data_model="utxo", engines=("occ",),
                backend="thread", jobs=2, chunk_size=1,
            )
        serial_rows = [
            row for row in serial_state.recorder.dump_rows()
            if row[0] == "occ"
        ]
        fanned_rows = [
            row for row in fanned_state.recorder.dump_rows()
            if row[0] == "occ"
        ]
        assert fanned_rows == serial_rows
        serial_metrics = serial_state.registry.snapshot()
        fanned_metrics = fanned_state.registry.snapshot()
        occ_keys = [
            key for key in serial_metrics["counters"]
            if key.startswith("exec.occ.")
        ]
        assert occ_keys
        for key in occ_keys:
            assert (
                fanned_metrics["counters"][key]
                == serial_metrics["counters"][key]
            )
        assert fanned_metrics["counters"][
            "exec.replay.blocks{backend=thread}"
        ] == len(tiny_inputs)

    def test_uninstrumented_run_records_nothing(self, tiny_inputs):
        result = replay_chain(
            tiny_inputs, data_model="utxo", engines=("sequential",),
            backend="serial",
        )
        assert not obs.enabled()
        assert result.summary("sequential").committed > 0
