"""Tests for dependency-DAG execution (the Eq. 2 pessimism study)."""

from __future__ import annotations

import pytest

from repro.account.receipts import ExecutedTransaction, Receipt
from repro.account.transaction import make_account_transaction
from repro.core.tdg import utxo_tdg
from repro.execution.dag import DependencyDAG, account_dag, utxo_dag
from repro.utxo.transaction import TxOutputSpec, make_coinbase, make_transaction
from repro.utxo.txo import COIN


def _executed(sender, receiver, nonce=0):
    tx = make_account_transaction(
        sender=sender, receiver=receiver, value=1, nonce=nonce
    )
    return ExecutedTransaction(
        tx=tx,
        receipt=Receipt(tx_hash=tx.tx_hash, success=True, gas_used=21_000),
    )


class TestDependencyDAG:
    def test_add_and_validate(self):
        dag = DependencyDAG()
        dag.add_task("a")
        dag.add_task("b")
        dag.add_edge("a", "b")
        assert len(dag) == 2
        with pytest.raises(ValueError):
            dag.add_task("a")
        with pytest.raises(KeyError):
            dag.add_edge("a", "zz")

    def test_edges_oriented_by_block_order(self):
        dag = DependencyDAG()
        dag.add_task("first")
        dag.add_task("second")
        dag.add_edge("second", "first")  # reversed input is corrected
        assert "second" in dag.successors["first"]

    def test_critical_path_chain(self):
        dag = DependencyDAG()
        for name in "abc":
            dag.add_task(name)
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        assert dag.critical_path() == 3.0
        assert dag.schedule_makespan(8) == 3.0

    def test_critical_path_fan_out(self):
        dag = DependencyDAG()
        dag.add_task("parent")
        for index in range(6):
            dag.add_task(f"child{index}")
            dag.add_edge("parent", f"child{index}")
        assert dag.critical_path() == 2.0
        assert dag.schedule_makespan(6) == 2.0
        # With fewer cores the children queue up.
        assert dag.schedule_makespan(2) == 4.0

    def test_empty(self):
        dag = DependencyDAG()
        assert dag.critical_path() == 0.0
        assert dag.schedule_makespan(4) == 0.0
        assert dag.speedup(4) == 1.0


class TestUTXODag:
    def _fanout_block(self):
        """cb -> fanout -> 8 independent children: tree component."""
        cb = make_coinbase(reward=80 * COIN, miner="m", height=0)
        fanout = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[
                TxOutputSpec(value=10 * COIN, owner=f"u{i}")
                for i in range(8)
            ],
            nonce="fan",
        )
        children = [
            make_transaction(
                inputs=[fanout.outputs[i].outpoint],
                outputs=[TxOutputSpec(value=10 * COIN, owner=f"v{i}")],
                nonce=("child", i),
            )
            for i in range(8)
        ]
        return [cb, fanout, *children]

    def test_fanout_component_is_not_sequential(self):
        """The Eq. 2 pessimism: LCC 9, but critical path only 2."""
        block = self._fanout_block()
        tdg = utxo_tdg(block)
        dag = utxo_dag(block)
        assert tdg.lcc_size == 9
        assert dag.critical_path() == 2.0
        # Chain model bounds speed-up by x/LCC = 1; DAG achieves ~4.5x.
        assert dag.speedup(8) > 4.0

    def test_fig6_chain_truly_sequential(self):
        """Fig. 6's sweep chain has no hidden parallelism."""
        from repro.analysis.examples import figure_6_chain

        transactions, tdg = figure_6_chain()
        dag = utxo_dag(transactions)
        assert dag.critical_path() == float(tdg.lcc_size)
        assert dag.speedup(64) == pytest.approx(1.0)

    def test_spend_of_prior_blocks_has_no_edges(self):
        cb = make_coinbase(reward=COIN, miner="m", height=0)
        lone = make_transaction(
            inputs=[cb.outputs[0].outpoint],
            outputs=[TxOutputSpec(value=COIN, owner="x")],
            nonce="lone",
        )
        dag = utxo_dag([lone])
        assert dag.critical_path() == 1.0


class TestAccountDag:
    def test_exchange_fan_in_is_truly_sequential(self):
        """Deposits to one address chain per-cell: Eq. 2 is tight here."""
        block = [_executed(f"0xu{i}", "0xhot") for i in range(6)]
        dag = account_dag(block)
        assert dag.critical_path() == 6.0
        assert dag.speedup(8) == pytest.approx(1.0)

    def test_disjoint_transfers_parallel(self):
        block = [
            _executed(f"0xa{i}", f"0xb{i}") for i in range(8)
        ]
        dag = account_dag(block)
        assert dag.critical_path() == 1.0
        assert dag.speedup(8) == pytest.approx(8.0)

    def test_per_address_chaining(self):
        """A->B, B->C, D->E: first two chain via B, third is free."""
        block = [
            _executed("0xa", "0xb"),
            _executed("0xb", "0xc"),
            _executed("0xd", "0xe"),
        ]
        dag = account_dag(block)
        assert dag.critical_path() == 2.0
        assert dag.schedule_makespan(2) == 2.0

    def test_gas_costs_mode(self):
        block = [_executed("0xa", "0xb")]
        dag = account_dag(block, unit_cost=False)
        assert dag.total_work == pytest.approx(1.0)

    def test_dag_never_slower_than_chain_model(self, small_ethereum_builder):
        """DAG speed-up >= x/LCC on every real block (less pessimism)."""
        from repro.core.tdg import account_tdg

        for _block, executed in small_ethereum_builder.executed_blocks[-15:]:
            regular = [i for i in executed if not i.is_coinbase]
            if len(regular) < 10:
                continue
            tdg = account_tdg(executed)
            dag = account_dag(executed)
            chain_bound = tdg.num_transactions / tdg.lcc_size
            assert dag.speedup(64) >= chain_bound - 1e-9
