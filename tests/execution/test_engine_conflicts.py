"""Guard rails for ``TxTask.conflicts_with`` — the relation every
executor (speculative bins, OCC commit checks, grouped partitioning)
depends on.  Read/read sharing must NOT conflict; the relation must be
symmetric for arbitrary read/write sets."""

from __future__ import annotations

import random

from repro.execution.engine import TxTask, conflict_groups


def _task(name: str, reads=(), writes=()) -> TxTask:
    return TxTask(
        tx_hash=name,
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


class TestConflictCases:
    def test_read_read_does_not_conflict(self):
        a = _task("a", reads={"x", "y"})
        b = _task("b", reads={"x", "y"})
        assert not a.conflicts_with(b)
        assert not b.conflicts_with(a)

    def test_read_read_does_not_conflict_in_groups(self):
        # The group partitioner must agree with the pairwise relation.
        a = _task("a", reads={"x"})
        b = _task("b", reads={"x"})
        groups = conflict_groups([a, b])
        assert sorted(len(group) for group in groups) == [1, 1]

    def test_write_write_conflicts(self):
        a = _task("a", writes={"x"})
        b = _task("b", writes={"x"})
        assert a.conflicts_with(b)

    def test_write_read_conflicts(self):
        writer = _task("w", writes={"x"})
        reader = _task("r", reads={"x"})
        assert writer.conflicts_with(reader)
        assert reader.conflicts_with(writer)

    def test_disjoint_sets_do_not_conflict(self):
        a = _task("a", reads={"p"}, writes={"q"})
        b = _task("b", reads={"r"}, writes={"s"})
        assert not a.conflicts_with(b)

    def test_conflict_requires_shared_location(self):
        a = _task("a", reads={"x"}, writes={"y"})
        b = _task("b", reads={"y"}, writes={"z"})
        assert a.conflicts_with(b)  # a writes y, b reads y


class TestConflictSymmetry:
    """Property test: a.conflicts_with(b) == b.conflicts_with(a)."""

    LOCATIONS = [f"loc{i}" for i in range(6)]

    def _random_task(self, rng: random.Random, name: str) -> TxTask:
        reads = {loc for loc in self.LOCATIONS if rng.random() < 0.3}
        writes = {loc for loc in self.LOCATIONS if rng.random() < 0.3}
        return _task(name, reads=reads, writes=writes)

    def test_symmetric_over_random_pairs(self):
        rng = random.Random(2020)
        for trial in range(500):
            a = self._random_task(rng, f"a{trial}")
            b = self._random_task(rng, f"b{trial}")
            assert a.conflicts_with(b) == b.conflicts_with(a), (
                f"asymmetric at trial {trial}: "
                f"a(reads={sorted(a.reads)}, writes={sorted(a.writes)}) vs "
                f"b(reads={sorted(b.reads)}, writes={sorted(b.writes)})"
            )

    def test_symmetry_matches_explicit_definition(self):
        # conflicts iff one's writes intersect the other's reads|writes.
        rng = random.Random(7)
        for trial in range(200):
            a = self._random_task(rng, f"a{trial}")
            b = self._random_task(rng, f"b{trial}")
            expected = bool(
                (a.writes & (b.reads | b.writes))
                | (b.writes & (a.reads | a.writes))
            )
            assert a.conflicts_with(b) == expected
