"""Property tests: replay fan-out is invariant in jobs and chunk size.

For ANY (backend, jobs, chunk_size) drawn by Hypothesis, the parallel
replay must preserve, per (block, engine):

* the exact commit order (hence the state root), and
* the total flight-recorder event counts — scheduled, aborted,
  retried, committed.

The strategy space deliberately includes degenerate shapes (more jobs
than blocks, 1-block chunks, chunks larger than the chain) because
those are where chunk-boundary bugs live.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.execution.parallel_replay import (
    replay_block_inputs,
    replay_chain,
)
from repro.workload.profiles import BITCOIN, ETHEREUM

# A compact engine slice that still spans the interesting commit
# semantics: block-order baseline, abort/retry waves, DAG scheduling.
PROPERTY_ENGINES = ("sequential", "occ", "dag")


@pytest.fixture(scope="module")
def property_inputs():
    return {
        "utxo": replay_block_inputs(BITCOIN, blocks=5, seed=3, scale=0.1),
        "account": replay_block_inputs(
            ETHEREUM, blocks=5, seed=3, scale=0.2
        ),
    }


@pytest.fixture(scope="module")
def property_baseline(property_inputs):
    return {
        model: replay_chain(
            blocks, data_model=model, engines=PROPERTY_ENGINES,
            backend="serial",
        )
        for model, blocks in property_inputs.items()
    }


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    backend=st.sampled_from(["serial", "thread"]),
    jobs=st.integers(min_value=1, max_value=5),
    chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    model=st.sampled_from(["utxo", "account"]),
)
def test_commit_order_and_event_counts_invariant(
    property_inputs, property_baseline, backend, jobs, chunk_size, model
):
    result = replay_chain(
        property_inputs[model],
        data_model=model,
        engines=PROPERTY_ENGINES,
        backend=backend,
        jobs=jobs,
        chunk_size=chunk_size,
    )
    expected = property_baseline[model]
    assert len(result.records) == len(expected.records)
    for got, want in zip(result.records, expected.records):
        assert (got.height, got.engine) == (want.height, want.engine)
        assert got.commit_order == want.commit_order
        assert got.state_root == want.state_root
        assert (
            got.scheduled, got.aborted, got.retried, got.committed
        ) == (
            want.scheduled, want.aborted, want.retried, want.committed
        )


@settings(max_examples=6, deadline=None)
@given(
    jobs=st.integers(min_value=1, max_value=3),
    chunk_size=st.integers(min_value=1, max_value=6),
)
def test_process_backend_invariant(jobs, chunk_size):
    """The process pool (fork or spawn+shm) is invariant too.

    Kept to a small example budget — each example pays pool start-up —
    with the wider shapes covered by the thread/serial property above
    and the full matrix in test_differential.py.
    """
    inputs = replay_block_inputs(BITCOIN, blocks=4, seed=5, scale=0.1)
    expected = replay_chain(
        inputs, data_model="utxo", engines=("occ",), backend="serial"
    )
    result = replay_chain(
        inputs, data_model="utxo", engines=("occ",),
        backend="process", jobs=jobs, chunk_size=chunk_size,
    )
    assert result.records == expected.records
