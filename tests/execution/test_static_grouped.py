"""StaticGroupedExecutor: prediction-driven group scheduling."""

from __future__ import annotations

import pytest

from repro import obs
from repro.execution.engine import TxTask
from repro.execution.grouped import GroupedExecutor
from repro.execution.static_grouped import StaticGroupedExecutor
from repro.staticcheck.predict import PredictedAccess, unknown_access


def task(name: str, *, reads=(), writes=(), cost=1.0) -> TxTask:
    return TxTask(
        tx_hash=name,
        cost=cost,
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


def exact_prediction(item: TxTask) -> PredictedAccess:
    return PredictedAccess(
        tx_hash=item.tx_hash, reads=item.reads, writes=item.writes
    )


def test_validates_constructor_args():
    with pytest.raises(ValueError):
        StaticGroupedExecutor(0)
    with pytest.raises(ValueError):
        StaticGroupedExecutor(2, scheduling_cost=-1.0)


def test_empty_block_is_free():
    report = StaticGroupedExecutor(4).run([])
    assert report.wall_time == 0.0
    assert report.num_tasks == 0


def test_exact_predictions_match_oracle_scheduler():
    """With perfect predictions the schedule equals the runtime-set
    oracle (GroupedExecutor) and the safety net never fires."""
    tasks = [
        task("a", writes={"x"}),
        task("b", writes={"x"}),
        task("c", writes={"y"}, cost=2.0),
        task("d", writes={"z"}),
    ]
    predictions = {t.tx_hash: exact_prediction(t) for t in tasks}
    static = StaticGroupedExecutor(
        2, predictions=predictions, scheduling_cost=0.5
    ).run(tasks)
    oracle = GroupedExecutor(2, scheduling_cost=0.5).run(tasks)
    assert static.wall_time == oracle.wall_time
    assert static.aborts == 0
    assert static.reexecuted == 0
    assert static.rounds == 1


def test_overapproximation_merges_groups_but_stays_safe():
    """A false-positive overlap serializes two independent tasks —
    slower, never wrong, and no aborts."""
    tasks = [task("a", writes={"x"}), task("b", writes={"y"})]
    predictions = {
        "a": PredictedAccess(
            tx_hash="a", writes=frozenset({"x", "shared"})
        ),
        "b": PredictedAccess(
            tx_hash="b", writes=frozenset({"y", "shared"})
        ),
    }
    report = StaticGroupedExecutor(2, predictions=predictions).run(tasks)
    assert report.wall_time == 2.0  # one group, sequential chain
    assert report.aborts == 0


def test_missing_predictions_degrade_to_sequential():
    """No predictions → every task is ⊤ → one group in block order."""
    tasks = [task("a", writes={"x"}), task("b", writes={"y"})]
    report = StaticGroupedExecutor(4).run(tasks)
    assert report.wall_time == 2.0
    assert report.aborts == 0
    explicit_top = {t.tx_hash: unknown_access(t.tx_hash) for t in tasks}
    explicit = StaticGroupedExecutor(
        4, predictions=explicit_top
    ).run(tasks)
    assert explicit.wall_time == report.wall_time


def test_unsound_predictions_trigger_safety_net():
    tasks = [task("a", writes={"x"}), task("b", writes={"x"})]
    # Deliberately wrong: claims the tasks are independent.
    predictions = {
        "a": PredictedAccess(tx_hash="a", writes=frozenset({"p"})),
        "b": PredictedAccess(tx_hash="b", writes=frozenset({"q"})),
    }
    report = StaticGroupedExecutor(2, predictions=predictions).run(tasks)
    assert report.aborts == 2
    assert report.reexecuted == 2
    assert report.rounds == 2
    # wall = parallel wave (1.0) + sequential retry of both (2.0)
    assert report.wall_time == 3.0


def test_reports_obs_counters():
    tasks = [
        task("a", writes={"x"}),
        task("b", writes={"x"}),
        task("c", writes={"y"}),
    ]
    predictions = {t.tx_hash: exact_prediction(t) for t in tasks}
    with obs.instrumented() as state:
        StaticGroupedExecutor(2, predictions=predictions).run(tasks)
    snapshot = state.registry.snapshot()
    counters = snapshot["counters"]
    assert counters["exec.static_grouped.groups"] == 2
    assert counters["exec.static_grouped.aborts"] == 0
    assert (
        counters["exec.runs{cores=2,executor=static-grouped}"] == 1
    )
    sizes = snapshot["histograms"]["exec.static_grouped.group_size"]
    assert sizes["count"] == 2


def test_recorder_rows_cover_all_tasks():
    tasks = [task("a", writes={"x"}), task("b", writes={"x"})]
    predictions = {
        "a": PredictedAccess(tx_hash="a", writes=frozenset({"p"})),
        "b": PredictedAccess(tx_hash="b", writes=frozenset({"q"})),
    }
    with obs.instrumented() as state:
        StaticGroupedExecutor(2, predictions=predictions).run(tasks)
    events = state.recorder.events(executor="static-grouped")
    committed = [e.task for e in events if e.kind == "commit"]
    aborted = [e.task for e in events if e.kind == "abort"]
    # Both aborted in the wave, then both committed in the retry round.
    assert sorted(aborted) == ["a", "b"]
    assert sorted(committed) == ["a", "b"]
