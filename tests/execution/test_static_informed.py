"""StaticInformedExecutor: prediction-binned two-phase execution."""

from __future__ import annotations

import pytest

from repro import obs
from repro.execution.engine import TxTask
from repro.execution.speculative import InformedSpeculativeExecutor
from repro.execution.static_informed import StaticInformedExecutor
from repro.staticcheck.predict import PredictedAccess, unknown_access


def task(name: str, *, reads=(), writes=(), cost=1.0) -> TxTask:
    return TxTask(
        tx_hash=name,
        cost=cost,
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


def exact_prediction(item: TxTask) -> PredictedAccess:
    return PredictedAccess(
        tx_hash=item.tx_hash, reads=item.reads, writes=item.writes
    )


def test_validates_constructor_args():
    with pytest.raises(ValueError):
        StaticInformedExecutor(0)
    with pytest.raises(ValueError):
        StaticInformedExecutor(2, preprocessing_cost=-1.0)


def test_empty_block_is_free():
    report = StaticInformedExecutor(4).run([])
    assert report.wall_time == 0.0
    assert report.num_tasks == 0


def test_exact_predictions_match_oracle_executor():
    tasks = [
        task("a", writes={"x"}),
        task("b", writes={"x"}),
        task("c", writes={"y"}),
        task("d", writes={"z"}),
    ]
    predictions = {t.tx_hash: exact_prediction(t) for t in tasks}
    static = StaticInformedExecutor(
        2, predictions=predictions, preprocessing_cost=1.5
    ).run(tasks)
    oracle = InformedSpeculativeExecutor(
        2, preprocessing_cost=1.5
    ).run(tasks)
    assert static.wall_time == oracle.wall_time
    assert static.aborts == 0


def test_false_positives_shrink_parallel_phase():
    tasks = [task("a", writes={"x"}), task("b", writes={"y"})]
    # Over-approximated predictions force both into the bin.
    predictions = {t.tx_hash: unknown_access(t.tx_hash) for t in tasks}
    report = StaticInformedExecutor(2, predictions=predictions).run(tasks)
    # No parallel phase at all: both run sequentially.
    assert report.wall_time == 2.0
    assert report.aborts == 0


def test_missing_prediction_is_treated_as_top():
    tasks = [task("a", writes={"x"}), task("b", writes={"y"})]
    predictions = {"a": exact_prediction(tasks[0])}
    report = StaticInformedExecutor(2, predictions=predictions).run(tasks)
    # "b" defaults to global-⊤, conflicting with "a": both binned.
    assert report.wall_time == 2.0


def test_unsound_predictions_trigger_safety_net():
    tasks = [task("a", writes={"x"}), task("b", writes={"x"})]
    # Deliberately wrong predictions claim the tasks are independent.
    predictions = {
        "a": PredictedAccess(tx_hash="a", writes=frozenset({"p"})),
        "b": PredictedAccess(tx_hash="b", writes=frozenset({"q"})),
    }
    report = StaticInformedExecutor(2, predictions=predictions).run(tasks)
    # Both ran in parallel, truly conflicted, and were re-executed.
    assert report.aborts == 2
    assert report.reexecuted == 2
    # wall = parallel wave (1.0) + re-execution of both (2.0)
    assert report.wall_time == 3.0


def test_reports_obs_counters():
    tasks = [task("a", writes={"x"}), task("b", writes={"x"})]
    predictions = {t.tx_hash: exact_prediction(t) for t in tasks}
    with obs.instrumented() as state:
        StaticInformedExecutor(2, predictions=predictions).run(tasks)
    counters = state.registry.snapshot()["counters"]
    assert counters["exec.static-informed.binned"] == 2
    assert (
        counters["exec.runs{cores=2,executor=static-informed}"] == 1
    )
