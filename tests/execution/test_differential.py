"""Cross-executor differential harness over the replay fan-out.

Seeded UTXO and account chains replay through all seven engines on
every backend x jobs x chunk-size combination; each configuration must
produce byte-identical state roots, receipt roots, commit orders and
abort-adjusted commit sets.  The serial backend is the oracle — the
fanned-out configurations must reproduce its records exactly, and the
seven engines must agree with each other on the committed state.

Run the whole module under ``REPRO_MP_START_METHOD=spawn`` (the CI
shard does) to push the process configurations through the
shared-memory transport instead of fork globals.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.execution.parallel_replay import (
    ENGINES,
    replay_block_inputs,
    replay_chain,
)
from repro.workload.profiles import BITCOIN, ETHEREUM

# (backend, jobs, chunk_size) — the fan-out matrix.  Serial with a
# forced 1-block chunk exercises the chunk loop itself; the process
# rows cover both balanced and tiny chunks so results cross worker
# boundaries in different places.
CONFIGS = [
    pytest.param("serial", None, 1, id="serial-chunk1"),
    pytest.param("thread", 2, None, id="thread-j2"),
    pytest.param("thread", 3, 1, id="thread-j3-chunk1"),
    pytest.param("process", 2, None, id="process-j2"),
    pytest.param("process", 2, 2, id="process-j2-chunk2"),
]

CHAINS = ["utxo", "account"]


@pytest.fixture(scope="module")
def inputs():
    return {
        "utxo": replay_block_inputs(BITCOIN, blocks=8, seed=11, scale=0.15),
        "account": replay_block_inputs(
            ETHEREUM, blocks=8, seed=11, scale=0.3
        ),
    }


@pytest.fixture(scope="module")
def baseline(inputs):
    """Serial-backend oracle replay, one per data model."""
    return {
        model: replay_chain(
            inputs[model], data_model=model, backend="serial"
        )
        for model in CHAINS
    }


def test_start_method_honoured():
    """The CI spawn shard really runs under the configured method."""
    configured = os.environ.get("REPRO_MP_START_METHOD")
    if not configured:
        pytest.skip("no start method forced via REPRO_MP_START_METHOD")
    assert multiprocessing.get_start_method() == configured


@pytest.mark.parametrize("model", CHAINS)
def test_engines_agree_on_state(baseline, model):
    """All seven engines commit to one state and receipt root."""
    summaries = baseline[model].summaries()
    assert len(summaries) == len(ENGINES)
    state_roots = {s.state_root for s in summaries}
    receipt_roots = {s.receipt_root for s in summaries}
    assert len(state_roots) == 1, {
        s.engine: s.state_root for s in summaries
    }
    assert len(receipt_roots) == 1
    total_tasks = summaries[0].tasks
    assert total_tasks > 0
    for summary in summaries:
        assert summary.committed == total_tasks
        assert summary.tasks == total_tasks


@pytest.mark.parametrize("model", CHAINS)
def test_sequential_commit_order_is_block_order(baseline, inputs, model):
    """The oracle's oracle: sequential commits exactly in block order."""
    by_height = {block.height: block for block in inputs[model]}
    for record in baseline[model].for_engine("sequential"):
        expected = tuple(
            task.tx_hash for task in by_height[record.height].tasks
        )
        assert record.commit_order == expected


@pytest.mark.parametrize("model", CHAINS)
def test_abort_adjusted_commit_sets(baseline, inputs, model):
    """Every task commits exactly once, whatever it aborted through.

    The *set* of committed transactions must equal the block's task
    set for every engine (aborts are retries, never drops), and the
    recorded abort events must be matched one-for-one by retries.
    """
    by_height = {block.height: block for block in inputs[model]}
    for record in baseline[model].records:
        tasks = by_height[record.height].tasks
        assert record.committed == len(tasks)
        assert len(record.commit_order) == len(tasks)
        assert set(record.commit_order) == {t.tx_hash for t in tasks}
        assert record.aborted == record.retried
        if record.engine == "sequential":
            assert record.aborted == 0


@pytest.mark.parametrize("backend,jobs,chunk_size", CONFIGS)
@pytest.mark.parametrize("model", CHAINS)
def test_fanout_matches_serial_oracle(
    baseline, inputs, model, backend, jobs, chunk_size
):
    """Any fan-out configuration reproduces the serial records exactly.

    :class:`BlockReplay` equality covers state roots, receipt roots,
    commit orders, event counts and the simulated timings — byte
    identical, not merely equivalent.
    """
    result = replay_chain(
        inputs[model],
        data_model=model,
        backend=backend,
        jobs=jobs,
        chunk_size=chunk_size,
    )
    assert result.records == baseline[model].records
    assert result.engines == baseline[model].engines


@pytest.mark.parametrize("model", CHAINS)
def test_engine_subset_matches_full_replay(baseline, inputs, model):
    """A subset replay yields the same records as the full seven."""
    subset = ("occ", "dag")
    result = replay_chain(
        inputs[model], data_model=model, engines=subset,
        backend="thread", jobs=2,
    )
    for engine in subset:
        assert result.for_engine(engine) == baseline[model].for_engine(
            engine
        )
